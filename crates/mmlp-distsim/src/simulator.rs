//! Deterministic synchronous execution of node programs.
//!
//! The per-node steps of every round are submitted through the same
//! [`SolveBackend`] execution layer the batched
//! local-LP engine uses, so the simulator and the engine share one executor
//! and one [`ParallelConfig`]: a simulated message round is a pipeline stage
//! over node-range shards, exactly like a batch of local-LP solves.
//!
//! Two execution tiers mirror the two program tiers:
//!
//! * [`Simulator::run`] / [`Simulator::run_on`] execute closure-shaped
//!   [`NodeProgram`]s in-process (shared-memory state) — the reference path;
//! * [`Simulator::run_typed`] / [`Simulator::run_wire_on`] execute
//!   [`WireProgram`]s through the `mmlp/sim-round@1` wire stage, so the
//!   transport backends genuinely ship every round's `(state, inbox)` across
//!   the byte (or process) boundary and exchange inter-shard message batches
//!   through the [`ShardDriver`](mmlp_parallel::ShardDriver)'s deterministic
//!   by-`(round, shard, seq)` merge.  The conformance suite asserts both
//!   tiers are bit-identical, message count for message count.

use crate::network::Network;
use crate::program::{Action, MessageSize, NodeProgram, WireProgram};
use crate::sim_epoch::{
    next_run_token, CheckpointPolicy, EpochAction, ResidentSlot, SimEpochStage,
};
use crate::wire_round::SimRoundStage;
use mmlp_parallel::wire::WireError;
use mmlp_parallel::{
    backend_map, pooled_subprocess_backend, BackendKind, LoopbackBackend, ParallelConfig,
    RecoveryLog, ServiceError, SolveBackend, SolveService, StageRegistry, TenantId, Ticket,
    TransportError,
};
use parking_lot::Mutex;
use std::fmt;
use std::sync::Arc;

/// Configuration of the [`Simulator`].
#[derive(Debug, Clone, Copy)]
pub struct SimulatorConfig {
    /// Maximum number of synchronous rounds before the run is aborted.
    pub max_rounds: usize,
    /// Thread configuration for executing the per-node steps of one round.
    pub parallel: ParallelConfig,
    /// Which execution backend runs the per-round node steps.
    pub backend: BackendKind,
    /// How often the worker-resident tier ([`Simulator::run_epoch_on`])
    /// checkpoints resident state back to the host.
    pub checkpoint: CheckpointPolicy,
}

impl Default for SimulatorConfig {
    fn default() -> Self {
        Self {
            max_rounds: 10_000,
            parallel: ParallelConfig::default(),
            backend: BackendKind::default(),
            checkpoint: CheckpointPolicy::default(),
        }
    }
}

/// Errors produced by the simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// Some nodes were still running when the round limit was reached.
    RoundLimitExceeded {
        /// The configured limit.
        limit: usize,
        /// How many nodes had not halted.
        still_running: usize,
    },
    /// The execution backend's transport failed while shipping a round
    /// (typed: frame corruption, worker death past the retry budget, …).
    /// Only the [`WireProgram`] paths can produce this.
    Transport(TransportError),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::RoundLimitExceeded { limit, still_running } => {
                write!(f, "{still_running} nodes still running after the round limit of {limit}")
            }
            SimError::Transport(e) => write!(f, "simulator round transport failed: {e}"),
        }
    }
}

impl std::error::Error for SimError {}

impl From<TransportError> for SimError {
    fn from(e: TransportError) -> Self {
        SimError::Transport(e)
    }
}

/// The result of a completed simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct SimulationResult<O> {
    /// Final output of each node, indexed by node id.
    pub outputs: Vec<O>,
    /// Number of rounds executed (the maximum halting round plus one, i.e.
    /// the local horizon actually used).
    pub rounds: usize,
    /// The round (0-based) in which each node halted.
    pub halting_round: Vec<usize>,
    /// Total number of point-to-point messages delivered.
    pub messages: u64,
    /// Total communication volume in abstract [`MessageSize`] units.
    pub message_units: u64,
    /// Messages delivered per round.
    pub messages_per_round: Vec<u64>,
}

/// The [`Ticket`] a simulator epoch admitted onto a multi-tenant
/// [`SolveService`] resolves to ([`Simulator::submit_typed_epoch`]).
pub type EpochTicket<O> = Ticket<Result<SimulationResult<O>, SimError>>;

impl<O> SimulationResult<O> {
    /// Average number of messages sent per node over the whole run.
    pub fn messages_per_node(&self) -> f64 {
        if self.outputs.is_empty() {
            0.0
        } else {
            self.messages as f64 / self.outputs.len() as f64
        }
    }
}

/// Executes [`NodeProgram`]s in synchronous rounds over a [`Network`].
#[derive(Debug, Clone, Default)]
pub struct Simulator {
    config: SimulatorConfig,
}

impl Simulator {
    /// Simulator with the default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Simulator with an explicit configuration.
    pub fn with_config(config: SimulatorConfig) -> Self {
        Self { config }
    }

    /// The simulator's configuration.
    pub fn config(&self) -> &SimulatorConfig {
        &self.config
    }

    /// Simulator that executes each round sequentially (fully deterministic
    /// timing, useful in tests and when the caller is already parallel).
    pub fn sequential() -> Self {
        Self::with_config(SimulatorConfig {
            parallel: ParallelConfig::sequential(),
            backend: BackendKind::Sequential,
            ..SimulatorConfig::default()
        })
    }

    /// Runs `program` on every node of `network` until all nodes halt, on
    /// the backend selected in the configuration.
    pub fn run<P: NodeProgram>(
        &self,
        network: &Network,
        program: &P,
    ) -> Result<SimulationResult<P::Output>, SimError> {
        match self.config.backend {
            BackendKind::Sequential => self.run_on(network, program, &mmlp_parallel::Sequential),
            BackendKind::ScopedThreads => self.run_on(
                network,
                program,
                &mmlp_parallel::ScopedThreads::new(self.config.parallel),
            ),
            BackendKind::Sharded { shards } => self.run_on(
                network,
                program,
                &mmlp_parallel::Sharded::new(shards, self.config.parallel),
            ),
            // Closure-shaped node programs carry arbitrary state and cannot
            // be serialised, so for *this* entry point the transport kinds
            // run their rounds in-process on the plan-equivalent fixed-shard
            // backend (results are bit-identical by the backend contract).
            // Typed-message programs go through [`Simulator::run_typed`] /
            // [`Simulator::run_wire_on`] instead, where rounds genuinely
            // cross the byte and process boundary.
            BackendKind::Loopback { shards } => self.run_on(
                network,
                program,
                &mmlp_parallel::Sharded::new(shards, self.config.parallel),
            ),
            BackendKind::Subprocess { workers, .. } => self.run_on(
                network,
                program,
                &mmlp_parallel::Sharded::new(
                    workers * mmlp_parallel::SUBPROCESS_SHARDS_PER_WORKER,
                    self.config.parallel,
                ),
            ),
        }
    }

    /// Runs `program` on an explicit [`SolveBackend`] — the same extension
    /// seam the batched local-LP engine exposes, so a custom execution
    /// substrate serves simulated message rounds and batch solves alike.
    pub fn run_on<P: NodeProgram, B: SolveBackend>(
        &self,
        network: &Network,
        program: &P,
        backend: &B,
    ) -> Result<SimulationResult<P::Output>, SimError> {
        let n = network.num_nodes();
        let states: Vec<Mutex<Option<P::State>>> =
            (0..n).map(|v| Mutex::new(Some(program.init(v, network)))).collect();
        let mut outputs: Vec<Option<P::Output>> = (0..n).map(|_| None).collect();
        let mut halting_round: Vec<usize> = vec![0; n];
        // inboxes[v] = messages to be delivered to v at the start of the
        // current round, sorted by sender.
        let mut inboxes: Vec<Vec<(usize, P::Message)>> = (0..n).map(|_| Vec::new()).collect();
        let mut running: Vec<usize> = (0..n).collect();

        let mut messages: u64 = 0;
        let mut message_units: u64 = 0;
        let mut messages_per_round: Vec<u64> = Vec::new();
        let mut round = 0usize;

        while !running.is_empty() {
            if round >= self.config.max_rounds {
                return Err(SimError::RoundLimitExceeded {
                    limit: self.config.max_rounds,
                    still_running: running.len(),
                });
            }

            // Step every running node (sharded over the backend); the
            // per-node state is protected by its own uncontended mutex.
            let (actions, _round_stats): (Vec<Action<P::Message, P::Output>>, _) =
                backend_map(backend, "round", &running, |&node| {
                    let mut guard = states[node].lock();
                    let state = guard.as_mut().expect("running node has state");
                    let inbox = &inboxes[node];
                    program.step(node, state, inbox, round, network)
                });

            // Clear the inboxes we just consumed.
            for &node in &running {
                inboxes[node].clear();
            }

            let (still_running, round_messages) = deliver_round(
                network,
                round,
                &running,
                actions,
                &mut inboxes,
                &mut outputs,
                &mut halting_round,
                &mut message_units,
            );
            // Halted nodes drop their state.
            for &node in &running {
                if outputs[node].is_some() {
                    *states[node].lock() = None;
                }
            }
            messages += round_messages;
            messages_per_round.push(round_messages);
            running = still_running;
            round += 1;
        }

        Ok(SimulationResult {
            outputs: outputs
                .into_iter()
                .map(|o| o.expect("every node halted with an output"))
                .collect(),
            rounds: round,
            halting_round,
            messages,
            message_units,
            messages_per_round,
        })
    }

    /// Runs a [`WireProgram`] on the backend selected in the configuration,
    /// resolving the transport kinds against `registry` (which must serve
    /// [`STAGE_SIM_ROUND`](crate::wire_round::STAGE_SIM_ROUND) for this
    /// program — e.g. [`distsim_registry`](crate::wire_round::distsim_registry)
    /// for the programs this crate defines, or the engine registry of
    /// `mmlp-algorithms` for its algorithm programs).
    ///
    /// Unlike [`Simulator::run`], the transport kinds here genuinely cross
    /// the boundary: every round's states and inboxes are encoded, shipped
    /// (in memory under fault injection for `Loopback`, over real worker
    /// stdio for `Subprocess`) and the returned states and message batches
    /// decoded and merged deterministically.
    ///
    /// # Errors
    ///
    /// [`SimError::RoundLimitExceeded`] as for [`Simulator::run`], plus
    /// [`SimError::Transport`] when the backend's transport fails.
    pub fn run_typed<P: WireProgram>(
        &self,
        network: &Network,
        program: &P,
        registry: &Arc<StageRegistry>,
    ) -> Result<SimulationResult<P::Output>, SimError>
    where
        P::State: Clone + Sync,
    {
        match self.config.backend {
            BackendKind::Sequential => {
                self.run_wire_on(network, program, &mmlp_parallel::Sequential)
            }
            BackendKind::ScopedThreads => self.run_wire_on(
                network,
                program,
                &mmlp_parallel::ScopedThreads::new(self.config.parallel),
            ),
            BackendKind::Sharded { shards } => self.run_wire_on(
                network,
                program,
                &mmlp_parallel::Sharded::new(shards, self.config.parallel),
            ),
            BackendKind::Loopback { shards } => {
                self.run_wire_on(network, program, &LoopbackBackend::new(registry.clone(), shards))
            }
            BackendKind::Subprocess { workers, overlapped } => {
                let backend = pooled_subprocess_backend(workers, overlapped, registry);
                self.run_wire_on(network, program, &*backend)
            }
        }
    }

    /// Runs a [`WireProgram`] with every round submitted as the
    /// `mmlp/sim-round@1` [`WireStage`](mmlp_parallel::WireStage) on an
    /// explicit [`SolveBackend`].
    ///
    /// The host keeps the authoritative per-node states; each round it plans
    /// node-range shards over the running set, ships every node's
    /// `(state, inbox)` through the backend and merges the returned
    /// `(state, outbox)` steps in shard order (the driver's by-sequence
    /// ordered merge makes that order deterministic even under reordered or
    /// duplicated replies).  Cross-shard messages therefore flow through the
    /// driver between rounds instead of shared memory — and because every
    /// codec is exact-bit, the results are bit-identical to
    /// [`Simulator::run_on`], message count for message count.
    ///
    /// # Errors
    ///
    /// [`SimError::RoundLimitExceeded`] as for [`Simulator::run`], plus
    /// [`SimError::Transport`] when the backend's transport fails.
    pub fn run_wire_on<P: WireProgram, B: SolveBackend>(
        &self,
        network: &Network,
        program: &P,
        backend: &B,
    ) -> Result<SimulationResult<P::Output>, SimError>
    where
        P::State: Clone + Sync,
    {
        let n = network.num_nodes();
        let mut states: Vec<Option<P::State>> =
            (0..n).map(|v| Some(program.init(v, network))).collect();
        let mut outputs: Vec<Option<P::Output>> = (0..n).map(|_| None).collect();
        let mut halting_round: Vec<usize> = vec![0; n];
        let mut inboxes: Vec<Vec<(usize, P::Message)>> = (0..n).map(|_| Vec::new()).collect();
        let mut running: Vec<usize> = (0..n).collect();

        let mut messages: u64 = 0;
        let mut message_units: u64 = 0;
        let mut messages_per_round: Vec<u64> = Vec::new();
        let mut round = 0usize;

        while !running.is_empty() {
            if round >= self.config.max_rounds {
                return Err(SimError::RoundLimitExceeded {
                    limit: self.config.max_rounds,
                    still_running: running.len(),
                });
            }

            let stage = SimRoundStage {
                program,
                network,
                round,
                nodes: &running,
                states: &states,
                inboxes: &inboxes,
            };
            let run = backend.execute_stage(running.len(), &stage)?;

            // Merge in shard order (shards partition `running` contiguously,
            // so this is exactly `running` order): install the new states and
            // collect the actions for delivery.
            let mut actions = Vec::with_capacity(running.len());
            let mut next = 0usize;
            for shard_steps in run.outputs {
                for step in shard_steps {
                    let node = running[next];
                    next += 1;
                    states[node] = step.state;
                    actions.push(step.action);
                }
            }
            debug_assert_eq!(next, running.len(), "every running node stepped exactly once");

            // Clear the inboxes we just consumed.
            for &node in &running {
                inboxes[node].clear();
            }

            let (still_running, round_messages) = deliver_round(
                network,
                round,
                &running,
                actions,
                &mut inboxes,
                &mut outputs,
                &mut halting_round,
                &mut message_units,
            );
            messages += round_messages;
            messages_per_round.push(round_messages);
            running = still_running;
            round += 1;
        }

        Ok(SimulationResult {
            outputs: outputs
                .into_iter()
                .map(|o| o.expect("every node halted with an output"))
                .collect(),
            rounds: round,
            halting_round,
            messages,
            message_units,
            messages_per_round,
        })
    }

    /// Runs a [`WireProgram`] on the **worker-resident** epoch tier
    /// (`mmlp/sim-epoch@1`) on the backend selected in the configuration —
    /// the counterpart of [`Simulator::run_typed`] for
    /// [`Simulator::run_epoch_on`].
    ///
    /// # Errors
    ///
    /// As for [`Simulator::run_epoch_on`].
    pub fn run_typed_epoch<P: WireProgram>(
        &self,
        network: &Network,
        program: &P,
        registry: &Arc<StageRegistry>,
    ) -> Result<SimulationResult<P::Output>, SimError>
    where
        P::State: Clone + Sync,
    {
        match self.config.backend {
            BackendKind::Sequential => {
                self.run_epoch_on(network, program, &mmlp_parallel::Sequential)
            }
            BackendKind::ScopedThreads => self.run_epoch_on(
                network,
                program,
                &mmlp_parallel::ScopedThreads::new(self.config.parallel),
            ),
            BackendKind::Sharded { shards } => self.run_epoch_on(
                network,
                program,
                &mmlp_parallel::Sharded::new(shards, self.config.parallel),
            ),
            BackendKind::Loopback { shards } => {
                self.run_epoch_on(network, program, &LoopbackBackend::new(registry.clone(), shards))
            }
            BackendKind::Subprocess { workers, overlapped } => {
                let backend = pooled_subprocess_backend(workers, overlapped, registry);
                self.run_epoch_on(network, program, &*backend)
            }
        }
    }

    /// Admits a [`run_typed_epoch`](Simulator::run_typed_epoch) run onto a
    /// multi-tenant [`SolveService`] for `tenant`, returning the [`Ticket`]
    /// its [`SimulationResult`] will arrive on.
    ///
    /// The admitted epoch dispatches through the ordinary backend
    /// machinery, so simulator rounds and engine solves queue onto the same
    /// fairness lanes and — under
    /// [`BackendKind::Subprocess`] — the same process-wide worker pool.
    ///
    /// # Errors
    ///
    /// [`ServiceError::QueueFull`] (the service's typed backpressure) or
    /// [`ServiceError::Draining`]; simulation failures arrive inside the
    /// [`Ticket`].
    pub fn submit_typed_epoch<P>(
        &self,
        service: &SolveService,
        tenant: TenantId,
        network: &Network,
        program: P,
        registry: &Arc<StageRegistry>,
    ) -> Result<EpochTicket<P::Output>, ServiceError>
    where
        P: WireProgram + Send + 'static,
        P::State: Clone + Sync,
        P::Output: Send + 'static,
    {
        let simulator = self.clone();
        let network = network.clone();
        let registry = registry.clone();
        service.submit(tenant, move || simulator.run_typed_epoch(&network, &program, &registry))
    }

    /// Runs a [`WireProgram`] with **worker-resident state**: every round is
    /// submitted as the `mmlp/sim-epoch@1` stage, whose jobs carry only the
    /// round number and the shard's inter-shard message batches — per-node
    /// state lives on the workers between rounds instead of travelling with
    /// every job (the steady-state wire volume drops from
    /// `O(state + messages)` to `O(messages)` per round).
    ///
    /// The plan covers all nodes every round with fixed shard boundaries, so
    /// each worker's resident states keep describing the same node range.
    /// Correctness under worker death comes from the checkpoint/restore
    /// protocol: per the configured [`CheckpointPolicy`], jobs ask workers
    /// to stream state snapshots back, and the backend's
    /// [`RecoveryLog`] replays `snapshot + buffered jobs` into respawned
    /// workers.  The in-process backends run the identical resident-state
    /// protocol against host-side shard mirrors, so every backend is
    /// bit-identical to [`Simulator::run_on`] — the conformance and fault
    /// suites assert this, including under scripted worker deaths.
    ///
    /// A full checkpoint-and-recover round trip — snapshots every 2 rounds,
    /// a worker killed mid-run, results asserted identical to the
    /// sequential simulator:
    ///
    /// ```
    /// use mmlp_core::InstanceBuilder;
    /// use mmlp_distsim::{
    ///     distsim_registry, CheckpointPolicy, GatherProgram, Network, Simulator,
    ///     SimulatorConfig,
    /// };
    /// use mmlp_hypergraph::communication_hypergraph;
    /// use mmlp_parallel::{FaultPlan, LoopbackBackend};
    ///
    /// // A 4-agent path instance and its radius-2 gathering protocol.
    /// let mut b = InstanceBuilder::new();
    /// let v = b.add_agents(4);
    /// for w in v.windows(2) {
    ///     let i = b.add_resource();
    ///     b.set_consumption(i, w[0], 1.0);
    ///     b.set_consumption(i, w[1], 1.0);
    /// }
    /// for &agent in &v {
    ///     let k = b.add_party();
    ///     b.set_benefit(k, agent, 1.0);
    /// }
    /// let inst = b.build().unwrap();
    /// let program = GatherProgram::new(&inst, 2);
    /// let (h, _) = communication_hypergraph(&inst);
    /// let network = Network::from_hypergraph(&h);
    ///
    /// let reference = Simulator::sequential().run(&network, &program).unwrap();
    ///
    /// // Two loopback workers; the fault plan kills each worker's first
    /// // link after one reply, forcing a restore + replay mid-run.
    /// let backend = LoopbackBackend::new(distsim_registry(), 2)
    ///     .with_faults(FaultPlan { die_after_replies: Some(1), ..FaultPlan::none() });
    /// let sim = Simulator::with_config(SimulatorConfig {
    ///     checkpoint: CheckpointPolicy::every(2),
    ///     ..SimulatorConfig::default()
    /// });
    /// let run = sim.run_epoch_on(&network, &program, &backend).unwrap();
    /// assert_eq!(run.outputs, reference.outputs);
    /// assert_eq!(run.messages, reference.messages);
    /// assert_eq!(run.rounds, reference.rounds);
    /// ```
    ///
    /// # Errors
    ///
    /// [`SimError::RoundLimitExceeded`] as for [`Simulator::run`], plus
    /// [`SimError::Transport`] when the backend's transport fails (for
    /// example when worker deaths exhaust the retry budget).
    pub fn run_epoch_on<P: WireProgram, B: SolveBackend>(
        &self,
        network: &Network,
        program: &P,
        backend: &B,
    ) -> Result<SimulationResult<P::Output>, SimError>
    where
        P::State: Clone + Sync,
    {
        let n = network.num_nodes();
        let token = next_run_token();
        let mut outputs: Vec<Option<P::Output>> = (0..n).map(|_| None).collect();
        let mut halting_round: Vec<usize> = vec![0; n];
        let mut inboxes: Vec<Vec<(usize, P::Message)>> = (0..n).map(|_| Vec::new()).collect();
        let mut running: Vec<usize> = (0..n).collect();
        let mut running_flags: Vec<bool> = vec![true; n];
        // Host-side resident mirrors for the in-process backends (a plan
        // never has more shards than items, so `n` slots suffice).
        let resident: Vec<ResidentSlot<P>> = (0..n).map(|_| Mutex::new(None)).collect();
        let mut recovery = RecoveryLog::new();

        let mut messages: u64 = 0;
        let mut message_units: u64 = 0;
        let mut messages_per_round: Vec<u64> = Vec::new();
        let mut round = 0usize;

        while !running.is_empty() {
            if round >= self.config.max_rounds {
                return Err(SimError::RoundLimitExceeded {
                    limit: self.config.max_rounds,
                    still_running: running.len(),
                });
            }

            let stage = SimEpochStage {
                program,
                network,
                round,
                snapshot: self.config.checkpoint.requests_snapshot(round),
                token,
                running: &running_flags,
                inboxes: &inboxes,
                resident: &resident,
            };
            let run = backend.execute_stage_recoverable(n, &stage, &mut recovery)?;

            // Shards are contiguous ascending node ranges and each reply
            // lists its running nodes in ascending order, so the
            // concatenation is exactly `running` order.  Each action keeps
            // its shard's boundary for the delivery rule below.
            let mut actions = Vec::with_capacity(running.len());
            let mut stepped = Vec::with_capacity(running.len());
            for (start, end, shard_steps) in run.outputs {
                for (node, action) in shard_steps {
                    stepped.push(node);
                    actions.push((start, end, action));
                }
            }
            if stepped != running {
                return Err(SimError::Transport(TransportError::Wire(WireError::Decode {
                    context: "sim-epoch merged replies",
                })));
            }

            // Clear the inter-shard inboxes we just consumed.
            for &node in &running {
                inboxes[node].clear();
            }

            // The epoch tier's delivery mirrors `deliver_round` exactly but
            // works from the reply summaries: halts and the outgoing queue
            // first, then counting and — only where a copy crosses its
            // sender's shard boundary — materialising the payload into the
            // recipient's inter-shard inbox.  Intra-shard copies were
            // already delivered by the worker from its retained outbox; the
            // host just counts them from the shipped size units.
            let mut round_messages = 0u64;
            let mut outgoing: Vec<(usize, usize, u64, Option<P::Message>)> = Vec::new();
            let mut still_running = Vec::with_capacity(running.len());
            for (&node, (start, end, action)) in running.iter().zip(actions) {
                match action {
                    EpochAction::Broadcast { units, message } => {
                        for &to in network.neighbors(node) {
                            let payload =
                                (to < start || to >= end).then(|| message.clone()).flatten();
                            outgoing.push((node, to, units, payload));
                        }
                        still_running.push(node);
                    }
                    EpochAction::Send { list } => {
                        for (to, units, message) in list {
                            assert!(
                                network.neighbors(node).contains(&to),
                                "node {node} attempted to message non-neighbour {to}"
                            );
                            outgoing.push((node, to, units, message));
                        }
                        still_running.push(node);
                    }
                    EpochAction::Idle => still_running.push(node),
                    EpochAction::Halt(output) => {
                        outputs[node] = Some(output);
                        halting_round[node] = round;
                    }
                }
            }
            for (from, to, units, payload) in outgoing {
                // Halted nodes no longer receive messages.
                if outputs[to].is_none() {
                    round_messages += 1;
                    message_units += units;
                    if let Some(message) = payload {
                        inboxes[to].push((from, message));
                    }
                }
            }
            for inbox in inboxes.iter_mut() {
                inbox.sort_by_key(|(from, _)| *from);
            }

            for &node in &running {
                if outputs[node].is_some() {
                    running_flags[node] = false;
                }
            }
            messages += round_messages;
            messages_per_round.push(round_messages);
            running = still_running;
            round += 1;
        }

        Ok(SimulationResult {
            outputs: outputs
                .into_iter()
                .map(|o| o.expect("every node halted with an output"))
                .collect(),
            rounds: round,
            halting_round,
            messages,
            message_units,
            messages_per_round,
        })
    }
}

/// Applies one round's actions: records halts, queues outgoing messages,
/// delivers them to nodes that have not halted and keeps every inbox sorted
/// by sender.  Returns the still-running nodes and the number of messages
/// delivered this round.
///
/// This is the single delivery path shared by the closure tier
/// ([`Simulator::run_on`]) and the wire tier ([`Simulator::run_wire_on`]):
/// actions are applied in `running` order, which both tiers produce, so the
/// two tiers are message-for-message identical.
#[allow(clippy::too_many_arguments)]
fn deliver_round<M: Clone + MessageSize, O>(
    network: &Network,
    round: usize,
    running: &[usize],
    actions: Vec<Action<M, O>>,
    inboxes: &mut [Vec<(usize, M)>],
    outputs: &mut [Option<O>],
    halting_round: &mut [usize],
    message_units: &mut u64,
) -> (Vec<usize>, u64) {
    let mut round_messages = 0u64;
    let mut outgoing: Vec<(usize, usize, M)> = Vec::new();
    let mut still_running = Vec::with_capacity(running.len());
    for (&node, action) in running.iter().zip(actions) {
        match action {
            Action::Broadcast(msg) => {
                for &to in network.neighbors(node) {
                    outgoing.push((node, to, msg.clone()));
                }
                still_running.push(node);
            }
            Action::Send(list) => {
                for (to, msg) in list {
                    assert!(
                        network.neighbors(node).contains(&to),
                        "node {node} attempted to message non-neighbour {to}"
                    );
                    outgoing.push((node, to, msg));
                }
                still_running.push(node);
            }
            Action::Idle => still_running.push(node),
            Action::Halt(output) => {
                outputs[node] = Some(output);
                halting_round[node] = round;
            }
        }
    }
    for (from, to, msg) in outgoing {
        // Halted nodes no longer receive messages.
        if outputs[to].is_none() {
            round_messages += 1;
            *message_units += msg.size_units();
            inboxes[to].push((from, msg));
        }
    }
    for inbox in inboxes.iter_mut() {
        inbox.sort_by_key(|(from, _)| *from);
    }
    (still_running, round_messages)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_topology::path_network;

    /// Every node immediately halts with its own id.
    struct IdentityProgram;
    impl NodeProgram for IdentityProgram {
        type State = ();
        type Message = ();
        type Output = usize;
        fn init(&self, _node: usize, _network: &Network) -> Self::State {}
        fn step(
            &self,
            node: usize,
            _state: &mut Self::State,
            _inbox: &[(usize, ())],
            _round: usize,
            _network: &Network,
        ) -> Action<(), usize> {
            Action::Halt(node)
        }
    }

    /// Each node floods a counter for `rounds` rounds, then outputs the sum of
    /// everything it received (used to check message accounting).
    struct FloodSum {
        rounds: usize,
    }
    impl NodeProgram for FloodSum {
        type State = u64;
        type Message = u64;
        type Output = u64;
        fn init(&self, node: usize, _network: &Network) -> Self::State {
            node as u64
        }
        fn step(
            &self,
            _node: usize,
            state: &mut Self::State,
            inbox: &[(usize, u64)],
            round: usize,
            _network: &Network,
        ) -> Action<u64, u64> {
            for (_, m) in inbox {
                *state += m;
            }
            if round >= self.rounds {
                Action::Halt(*state)
            } else {
                Action::Broadcast(*state)
            }
        }
    }

    /// Computes the maximum node id within the node's connected component by
    /// flooding; halts when the value is stable for two consecutive rounds.
    struct MaxFlood;
    impl NodeProgram for MaxFlood {
        type State = (u64, usize); // (current max, rounds since change)
        type Message = u64;
        type Output = u64;
        fn init(&self, node: usize, _network: &Network) -> Self::State {
            (node as u64, 0)
        }
        fn step(
            &self,
            _node: usize,
            state: &mut Self::State,
            inbox: &[(usize, u64)],
            _round: usize,
            network: &Network,
        ) -> Action<u64, u64> {
            let before = state.0;
            for (_, m) in inbox {
                state.0 = state.0.max(*m);
            }
            if state.0 == before {
                state.1 += 1;
            } else {
                state.1 = 0;
            }
            // Everyone waits diameter-many stable rounds; n is a safe bound.
            if state.1 > network.num_nodes() {
                Action::Halt(state.0)
            } else {
                Action::Broadcast(state.0)
            }
        }
    }

    #[test]
    fn identity_program_halts_in_one_round() {
        let net = path_network(5);
        let result = Simulator::new().run(&net, &IdentityProgram).unwrap();
        assert_eq!(result.outputs, vec![0, 1, 2, 3, 4]);
        assert_eq!(result.rounds, 1);
        assert_eq!(result.messages, 0);
        assert_eq!(result.halting_round, vec![0; 5]);
    }

    #[test]
    fn flooding_respects_the_horizon() {
        // On a path, after r rounds of flooding a node can only have been
        // influenced by nodes within distance r.
        let net = path_network(7);
        let one_round = Simulator::sequential().run(&net, &FloodSum { rounds: 1 }).unwrap();
        // Node 0 hears only node 1's initial value.
        assert_eq!(one_round.outputs[0], 1);
        // Node 3 hears nodes 2 and 4.
        assert_eq!(one_round.outputs[3], 3 + 2 + 4);
        assert_eq!(one_round.rounds, 2);
    }

    #[test]
    fn message_accounting_matches_topology() {
        let net = path_network(4); // 3 links
        let result = Simulator::sequential().run(&net, &FloodSum { rounds: 2 }).unwrap();
        // Rounds 0 and 1 broadcast on every link in both directions; round 2
        // halts without sending.
        assert_eq!(result.messages, 2 * 2 * 3);
        assert_eq!(result.messages_per_round, vec![6, 6, 0]);
        assert_eq!(result.message_units, result.messages);
        assert!(result.messages_per_node() > 0.0);
    }

    #[test]
    fn max_flood_finds_global_maximum() {
        let net = path_network(9);
        let result = Simulator::new().run(&net, &MaxFlood).unwrap();
        assert!(result.outputs.iter().all(|&m| m == 8));
    }

    #[test]
    fn parallel_and_sequential_runs_agree() {
        let net = path_network(20);
        let seq = Simulator::sequential().run(&net, &FloodSum { rounds: 5 }).unwrap();
        let par = Simulator::with_config(SimulatorConfig {
            parallel: ParallelConfig::with_threads(8),
            ..Default::default()
        })
        .run(&net, &FloodSum { rounds: 5 })
        .unwrap();
        assert_eq!(seq.outputs, par.outputs);
        assert_eq!(seq.messages, par.messages);
        assert_eq!(seq.rounds, par.rounds);
    }

    #[test]
    fn round_limit_is_enforced() {
        struct Forever;
        impl NodeProgram for Forever {
            type State = ();
            type Message = ();
            type Output = ();
            fn init(&self, _: usize, _: &Network) {}
            fn step(
                &self,
                _: usize,
                _: &mut (),
                _: &[(usize, ())],
                _: usize,
                _: &Network,
            ) -> Action<(), ()> {
                Action::Idle
            }
        }
        let net = path_network(3);
        let sim = Simulator::with_config(SimulatorConfig {
            max_rounds: 10,
            parallel: ParallelConfig::sequential(),
            backend: BackendKind::Sequential,
            ..SimulatorConfig::default()
        });
        assert_eq!(
            sim.run(&net, &Forever),
            Err(SimError::RoundLimitExceeded { limit: 10, still_running: 3 })
        );
    }

    #[test]
    fn empty_network_produces_empty_result() {
        let net = Network::from_adjacency(vec![]);
        let result = Simulator::new().run(&net, &IdentityProgram).unwrap();
        assert!(result.outputs.is_empty());
        assert_eq!(result.rounds, 0);
        assert_eq!(result.messages_per_node(), 0.0);
    }

    #[test]
    fn messages_per_node_is_guarded_against_empty_networks() {
        // Even a hand-built result with messages recorded but zero nodes
        // must not divide by zero: the average is defined as 0.0.
        let empty: SimulationResult<usize> = SimulationResult {
            outputs: vec![],
            rounds: 0,
            halting_round: vec![],
            messages: 7,
            message_units: 7,
            messages_per_round: vec![7],
        };
        assert_eq!(empty.messages_per_node(), 0.0);
        assert!(empty.messages_per_node().is_finite());
        let nonempty: SimulationResult<usize> = SimulationResult {
            outputs: vec![1, 2],
            rounds: 1,
            halting_round: vec![0, 0],
            messages: 7,
            message_units: 7,
            messages_per_round: vec![7],
        };
        assert_eq!(nonempty.messages_per_node(), 3.5);
    }

    #[test]
    fn all_backends_simulate_identically() {
        let net = path_network(15);
        let reference = Simulator::sequential().run(&net, &FloodSum { rounds: 4 }).unwrap();
        for backend in [
            BackendKind::ScopedThreads,
            BackendKind::Sharded { shards: 2 },
            BackendKind::Sharded { shards: 7 },
            // Node programs cannot be serialised, so the transport kinds
            // run rounds in-process on the plan-equivalent split — they
            // must still be selectable and bit-identical.
            BackendKind::Loopback { shards: 3 },
            BackendKind::Subprocess { workers: 2, overlapped: true },
            BackendKind::Subprocess { workers: 2, overlapped: false },
        ] {
            let run =
                Simulator::with_config(SimulatorConfig { backend, ..SimulatorConfig::default() })
                    .run(&net, &FloodSum { rounds: 4 })
                    .unwrap();
            assert_eq!(run.outputs, reference.outputs, "{backend:?}");
            assert_eq!(run.messages, reference.messages, "{backend:?}");
            assert_eq!(run.rounds, reference.rounds, "{backend:?}");
        }
        // The generic entry point accepts any backend implementation —
        // including a transport backend, whose closure path serves the
        // simulated rounds in-process.
        let via_trait = Simulator::new()
            .run_on(
                &net,
                &FloodSum { rounds: 4 },
                &mmlp_parallel::Sharded::new(3, ParallelConfig::default()),
            )
            .unwrap();
        assert_eq!(via_trait.outputs, reference.outputs);
        let loopback = mmlp_parallel::LoopbackBackend::new(
            std::sync::Arc::new(mmlp_parallel::StageRegistry::new()),
            3,
        );
        let via_transport =
            Simulator::new().run_on(&net, &FloodSum { rounds: 4 }, &loopback).unwrap();
        assert_eq!(via_transport.outputs, reference.outputs);
        assert_eq!(via_transport.messages, reference.messages);
    }

    #[test]
    fn directed_send_reaches_only_target() {
        /// Node 0 sends its id to its smallest neighbour only; everyone halts
        /// in round 1 with the count of messages received.
        struct SendOne;
        impl NodeProgram for SendOne {
            type State = usize;
            type Message = u64;
            type Output = usize;
            fn init(&self, _: usize, _: &Network) -> usize {
                0
            }
            fn step(
                &self,
                node: usize,
                state: &mut usize,
                inbox: &[(usize, u64)],
                round: usize,
                network: &Network,
            ) -> Action<u64, usize> {
                *state += inbox.len();
                if round == 0 {
                    if node == 0 {
                        let target = network.neighbors(0)[0];
                        Action::Send(vec![(target, 7)])
                    } else {
                        Action::Idle
                    }
                } else {
                    Action::Halt(*state)
                }
            }
        }
        let net = path_network(3);
        let result = Simulator::sequential().run(&net, &SendOne).unwrap();
        assert_eq!(result.outputs, vec![0, 1, 0]);
        assert_eq!(result.messages, 1);
    }
}
