//! The communication topology used by the simulator.

use mmlp_hypergraph::Hypergraph;
use mmlp_parallel::wire::{put_usize, put_usizes, ByteReader, WireError};
use serde::{Deserialize, Serialize};

/// An undirected communication network on nodes `0..num_nodes`.
///
/// In the paper the network is the communication hypergraph `H`; two agents
/// can exchange messages iff they share a hyperedge.  The simulator only
/// needs the resulting pairwise adjacency, which is what this type stores
/// (sorted, deduplicated adjacency lists).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Network {
    neighbors: Vec<Vec<usize>>,
}

impl Network {
    /// Builds a network with explicit adjacency lists.
    ///
    /// Lists are sorted and deduplicated; self-loops are removed.
    ///
    /// # Panics
    ///
    /// Panics if adjacency is not symmetric or mentions unknown nodes.
    pub fn from_adjacency(adjacency: Vec<Vec<usize>>) -> Self {
        Self::try_from_adjacency(adjacency).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Builds a network with explicit adjacency lists, reporting invalid
    /// input as an error instead of panicking — the constructor the wire
    /// decoder goes through, so a corrupted network payload can never bring
    /// a worker down.
    ///
    /// # Errors
    ///
    /// A description of the first unknown neighbour or asymmetric pair.
    pub fn try_from_adjacency(adjacency: Vec<Vec<usize>>) -> Result<Self, String> {
        let n = adjacency.len();
        let mut neighbors: Vec<Vec<usize>> = Vec::with_capacity(n);
        for (v, mut list) in adjacency.into_iter().enumerate() {
            list.retain(|&u| u != v);
            list.sort_unstable();
            list.dedup();
            for &u in &list {
                if u >= n {
                    return Err(format!("node {v} lists unknown neighbour {u}"));
                }
            }
            neighbors.push(list);
        }
        // Verify symmetry.
        for v in 0..n {
            for idx in 0..neighbors[v].len() {
                let u = neighbors[v][idx];
                if neighbors[u].binary_search(&v).is_err() {
                    return Err(format!(
                        "adjacency is not symmetric: {v} lists {u} but not vice versa"
                    ));
                }
            }
        }
        neighbors.shrink_to_fit();
        Ok(Self { neighbors })
    }

    /// Builds the network induced by a communication hypergraph: nodes are the
    /// hypergraph's nodes, and two nodes are adjacent iff they share a
    /// hyperedge.
    pub fn from_hypergraph(h: &Hypergraph) -> Self {
        let neighbors = (0..h.num_nodes()).map(|v| h.neighbors(v)).collect();
        Self { neighbors }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.neighbors.len()
    }

    /// Neighbours of `v` (sorted).
    pub fn neighbors(&self, v: usize) -> &[usize] {
        &self.neighbors[v]
    }

    /// Degree of `v`.
    pub fn degree(&self, v: usize) -> usize {
        self.neighbors[v].len()
    }

    /// Total number of undirected communication links.
    pub fn num_links(&self) -> usize {
        self.neighbors.iter().map(|l| l.len()).sum::<usize>() / 2
    }

    /// Maximum degree over all nodes.
    pub fn max_degree(&self) -> usize {
        self.neighbors.iter().map(|l| l.len()).max().unwrap_or(0)
    }
}

/// Encodes a network as its adjacency lists (node count, then one
/// length-prefixed neighbour list per node).
pub fn put_network(out: &mut Vec<u8>, network: &Network) {
    put_usize(out, network.num_nodes());
    for v in 0..network.num_nodes() {
        put_usizes(out, network.neighbors(v));
    }
}

/// Decodes a network, validating through [`Network::try_from_adjacency`].
///
/// # Errors
///
/// Typed [`WireError`]s for truncated input, out-of-range neighbour indices
/// and asymmetric adjacency — arbitrary byte noise errors out, it never
/// panics.
pub fn read_network(r: &mut ByteReader<'_>) -> Result<Network, WireError> {
    const CTX: &str = "network";
    // Every node's list occupies at least its 8-byte length prefix, so the
    // node count is bounded by the remaining payload.
    let n = r.seq_len(8, CTX)?;
    let adjacency = (0..n).map(|_| r.usizes(CTX)).collect::<Result<Vec<_>, _>>()?;
    Network::try_from_adjacency(adjacency).map_err(|_| WireError::Decode { context: CTX })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_adjacency_normalises() {
        let net = Network::from_adjacency(vec![vec![1, 1, 0], vec![0], vec![]]);
        assert_eq!(net.num_nodes(), 3);
        assert_eq!(net.neighbors(0), &[1]);
        assert_eq!(net.neighbors(1), &[0]);
        assert_eq!(net.degree(2), 0);
        assert_eq!(net.num_links(), 1);
        assert_eq!(net.max_degree(), 1);
    }

    #[test]
    #[should_panic]
    fn asymmetric_adjacency_is_rejected() {
        Network::from_adjacency(vec![vec![1], vec![]]);
    }

    #[test]
    #[should_panic]
    fn unknown_neighbor_is_rejected() {
        Network::from_adjacency(vec![vec![5]]);
    }

    #[test]
    fn from_hypergraph_uses_shared_edges() {
        // Hyperedge {0,1,2} plus edge {2,3}.
        let h = Hypergraph::from_edges(4, vec![vec![0, 1, 2], vec![2, 3]]);
        let net = Network::from_hypergraph(&h);
        assert_eq!(net.neighbors(0), &[1, 2]);
        assert_eq!(net.neighbors(2), &[0, 1, 3]);
        assert_eq!(net.neighbors(3), &[2]);
        assert_eq!(net.num_links(), 4);
        assert_eq!(net.max_degree(), 3);
    }

    #[test]
    fn empty_network() {
        let net = Network::from_adjacency(vec![]);
        assert_eq!(net.num_nodes(), 0);
        assert_eq!(net.num_links(), 0);
        assert_eq!(net.max_degree(), 0);
    }
}
