//! Shared fixtures for the Criterion benchmarks.
//!
//! Each bench target under `benches/` corresponds to one experiment of
//! `DESIGN.md` §5 (E1–E6); the benchmarks measure the *cost* of the
//! algorithms and constructions, while the `mmlp-experiments` binaries report
//! the *quality* numbers (ratios, bounds).

use maxmin_local_lp::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A deterministic RNG for benchmark fixtures.
pub fn bench_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// A random bounded-degree instance of the given size and resource-degree.
pub fn random_fixture(num_agents: usize, max_resource_support: usize) -> MaxMinInstance {
    let cfg = RandomInstanceConfig {
        num_agents,
        num_resources: num_agents + num_agents / 4,
        num_parties: num_agents / 2,
        max_resource_support,
        max_party_support: 3,
        zero_one_coefficients: false,
    };
    random_instance(&cfg, &mut bench_rng(1))
}

/// A 2-D torus instance of the given side length.
pub fn torus_fixture(side: usize) -> MaxMinInstance {
    let cfg = GridConfig { side_lengths: vec![side, side], torus: true, random_weights: true };
    grid_instance(&cfg, &mut bench_rng(2))
}

/// A two-tier sensor network fixture.
pub fn sensor_fixture(num_sensors: usize) -> SensorNetworkInstance {
    let cfg = SensorNetworkConfig {
        num_sensors,
        num_relays: num_sensors / 3,
        num_areas: 16,
        ..Default::default()
    };
    sensor_network_instance(&cfg, &mut bench_rng(3))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_are_valid() {
        assert!(random_fixture(30, 3).num_agents() == 30);
        assert!(torus_fixture(5).num_agents() == 25);
        assert!(sensor_fixture(30).num_links() > 0);
    }
}
