//! Benchmark for the transport layer: the batched engine across the
//! in-process backends, the in-memory loopback transport (full wire format,
//! no process) and the subprocess backend in lockstep vs overlapped
//! dispatch.
//!
//! The subprocess rows need a worker binary (`mmlp-worker` next to the
//! target directory, or `MMLP_WORKER_BIN`); where the environment cannot
//! spawn processes the backend's capability probe falls back to the
//! loopback transport with a logged skip, so the bench — and the CI smoke
//! run — never fails for platform reasons.

use criterion::{criterion_group, criterion_main, Criterion};
use maxmin_local_lp::prelude::*;
use mmlp_bench::bench_rng;

fn weighted_grid(side: usize) -> MaxMinInstance {
    let cfg = GridConfig { side_lengths: vec![side, side], torus: false, random_weights: true };
    grid_instance(&cfg, &mut bench_rng(9))
}

fn bench_transports_on_grid20(c: &mut Criterion) {
    let mut group = c.benchmark_group("e9_transports_grid20_r1");
    group.sample_size(10);
    let inst = weighted_grid(20);
    let options = LocalLpOptions::new(1);

    for (name, backend) in
        [("sequential", BackendKind::Sequential), ("sharded-4", BackendKind::Sharded { shards: 4 })]
    {
        let inst = inst.clone();
        group.bench_function(name, move |b| {
            b.iter(|| {
                let batch = solve_local_lps(&inst, &options.with_backend(backend)).unwrap();
                std::hint::black_box(batch.stats.unique_classes)
            })
        });
    }

    group.bench_function("loopback-4", |b| {
        let backend = LoopbackBackend::new(engine_registry(), 4);
        b.iter(|| {
            let batch = solve_local_lps_on(&inst, &options, &backend).unwrap();
            std::hint::black_box(batch.stats.unique_classes)
        })
    });

    // One pooled backend per dispatch mode: workers persist across
    // iterations, so the numbers measure the protocol, not process spawns.
    group.bench_function("subprocess-lockstep-2", |b| {
        let backend = SubprocessBackend::new(2, engine_registry()).lockstep();
        b.iter(|| {
            let batch = solve_local_lps_on(&inst, &options, &backend).unwrap();
            std::hint::black_box(batch.stats.unique_classes)
        })
    });
    group.bench_function("subprocess-overlapped-2", |b| {
        let backend = SubprocessBackend::new(2, engine_registry());
        b.iter(|| {
            let batch = solve_local_lps_on(&inst, &options, &backend).unwrap();
            std::hint::black_box(batch.stats.unique_classes)
        })
    });
    group.finish();
}

fn bench_wire_codec(c: &mut Criterion) {
    use maxmin_local_lp::algorithms::transport::{put_instance, read_instance};
    use maxmin_local_lp::parallel::wire::ByteReader;
    let mut group = c.benchmark_group("e9_wire_codec");
    let inst = weighted_grid(30);
    let mut bytes = Vec::new();
    put_instance(&mut bytes, &inst);
    group.bench_function("encode_instance_900_agents", |b| {
        b.iter(|| {
            let mut out = Vec::new();
            put_instance(&mut out, &inst);
            std::hint::black_box(out.len())
        })
    });
    group.bench_function("decode_instance_900_agents", |b| {
        b.iter(|| {
            let decoded = read_instance(&mut ByteReader::new(&bytes)).unwrap();
            std::hint::black_box(decoded.num_agents())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_transports_on_grid20, bench_wire_codec);
criterion_main!(benches);
