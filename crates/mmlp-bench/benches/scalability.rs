//! Benchmark for experiment E6: scalability of the simulated distributed
//! execution — gathering radius-r views and running the safe algorithm as
//! the torus grows, plus the parallel speed-up of the per-agent work.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use maxmin_local_lp::prelude::*;
use mmlp_bench::torus_fixture;

fn bench_distributed_safe(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_distributed_safe");
    group.sample_size(10);
    for side in [8usize, 16, 24] {
        let inst = torus_fixture(side);
        group.bench_with_input(BenchmarkId::from_parameter(side * side), &inst, |b, inst| {
            b.iter(|| {
                let run = run_local_rule(
                    inst,
                    SAFE_HORIZON,
                    &Simulator::new(),
                    &ParallelConfig::default(),
                    safe_activity_from_view,
                )
                .unwrap();
                std::hint::black_box(run.messages)
            })
        });
    }
    group.finish();
}

fn bench_gather_radius(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_gather_radius");
    group.sample_size(10);
    let inst = torus_fixture(16);
    for radius in [1usize, 2, 3] {
        group.bench_with_input(BenchmarkId::from_parameter(radius), &radius, |b, &radius| {
            b.iter(|| {
                let gathered = gather_views(&inst, radius, &Simulator::new()).unwrap();
                std::hint::black_box(gathered.message_units)
            })
        });
    }
    group.finish();
}

fn bench_parallel_speedup(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_parallel_local_lps");
    group.sample_size(10);
    let inst = torus_fixture(12);
    for threads in [1usize, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &threads| {
            b.iter(|| {
                let options = LocalAveragingOptions {
                    parallel: ParallelConfig::with_threads(threads),
                    ..LocalAveragingOptions::new(2)
                };
                let r = local_averaging(&inst, &options).unwrap();
                std::hint::black_box(inst.objective(&r.solution).unwrap())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_distributed_safe, bench_gather_radius, bench_parallel_speedup);
criterion_main!(benches);
