//! Benchmark for the batched local-LP engine: dedup + scatter versus the
//! naive one-LP-per-agent reference mode, and the engine's scaling on the
//! acceptance workload (50×50 grid at `R = 2`, where canonicalisation
//! collapses 2500 per-agent LPs into a few dozen unique classes).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use maxmin_local_lp::prelude::*;
use mmlp_bench::bench_rng;

fn uniform_grid(side: usize) -> MaxMinInstance {
    let cfg = GridConfig { side_lengths: vec![side, side], torus: false, random_weights: false };
    grid_instance(&cfg, &mut bench_rng(4))
}

fn bench_batched_vs_naive(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_batched_vs_naive_local_averaging");
    group.sample_size(10);
    let inst = uniform_grid(12);
    for (name, options) in
        [("batched", LocalAveragingOptions::new(2)), ("naive", LocalAveragingOptions::naive(2))]
    {
        group.bench_function(name, |b| {
            b.iter(|| {
                let result = local_averaging(&inst, &options).unwrap();
                std::hint::black_box(inst.objective(&result.solution).unwrap())
            })
        });
    }
    group.finish();
}

fn bench_engine_stages_on_grid50(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_engine_grid50");
    group.sample_size(10);
    let inst = uniform_grid(50);
    for radius in [1usize, 2] {
        group.bench_with_input(BenchmarkId::from_parameter(radius), &radius, |b, &radius| {
            b.iter(|| {
                let batch = solve_local_lps(&inst, &LocalLpOptions::new(radius)).unwrap();
                // The acceptance property the stats must show: ≥10× fewer
                // simplex solves than agents.
                assert!(batch.stats.lp_solves * 10 <= batch.stats.balls_enumerated);
                std::hint::black_box(batch.stats.unique_classes)
            })
        });
    }
    group.finish();
}

fn bench_ball_enumeration(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_ball_enumeration_sweep");
    group.sample_size(20);
    let inst = uniform_grid(50);
    let (h, _) = communication_hypergraph(&inst);
    group.bench_function("all_balls_r2", |b| b.iter(|| std::hint::black_box(h.all_balls(2).len())));
    group.finish();
}

criterion_group!(
    benches,
    bench_batched_vs_naive,
    bench_engine_stages_on_grid50,
    bench_ball_enumeration
);
criterion_main!(benches);
