//! Benchmark for experiment E1: the safe algorithm and the exact LP baseline
//! across resource-degree regimes on random bounded-degree instances.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use maxmin_local_lp::prelude::*;
use mmlp_bench::random_fixture;

fn bench_safe_algorithm(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_safe_algorithm");
    group.sample_size(20);
    for delta in [2usize, 4, 6] {
        let inst = random_fixture(80, delta);
        group.bench_with_input(BenchmarkId::from_parameter(delta), &inst, |b, inst| {
            b.iter(|| {
                let x = safe_algorithm(inst);
                std::hint::black_box(inst.objective(&x).unwrap())
            })
        });
    }
    group.finish();
}

fn bench_optimal_baseline(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_optimum_simplex");
    group.sample_size(10);
    for agents in [40usize, 80, 160] {
        let inst = random_fixture(agents, 3);
        group.bench_with_input(BenchmarkId::from_parameter(agents), &inst, |b, inst| {
            b.iter(|| std::hint::black_box(solve_maxmin(inst).unwrap().objective))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_safe_algorithm, bench_optimal_baseline);
criterion_main!(benches);
