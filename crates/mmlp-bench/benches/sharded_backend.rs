//! Benchmark for the pluggable sharded solve backend: the batched engine on
//! every built-in backend and several shard counts (the agent-range split a
//! multi-machine deployment would use), plus the warm-start reuse paths on
//! the 50×50 acceptance workload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use maxmin_local_lp::prelude::*;
use mmlp_bench::bench_rng;

fn uniform_grid(side: usize) -> MaxMinInstance {
    let cfg = GridConfig { side_lengths: vec![side, side], torus: false, random_weights: false };
    grid_instance(&cfg, &mut bench_rng(4))
}

fn bench_backends_on_grid50(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_backends_grid50_r2");
    group.sample_size(10);
    let inst = uniform_grid(50);
    for (name, backend) in [
        ("sequential", BackendKind::Sequential),
        ("scoped", BackendKind::ScopedThreads),
        ("sharded-2", BackendKind::Sharded { shards: 2 }),
        ("sharded-8", BackendKind::Sharded { shards: 8 }),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let options = LocalLpOptions::new(2).with_backend(backend);
                let batch = solve_local_lps(&inst, &options).unwrap();
                std::hint::black_box(batch.stats.unique_classes)
            })
        });
    }
    group.finish();
}

fn bench_shard_count_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_shard_count_sweep_grid50_r1");
    group.sample_size(10);
    let inst = uniform_grid(50);
    for shards in [1usize, 4, 16, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(shards), &shards, |b, &shards| {
            b.iter(|| {
                let options = LocalLpOptions::new(1).with_backend(BackendKind::Sharded { shards });
                let batch = solve_local_lps(&inst, &options).unwrap();
                std::hint::black_box(batch.stats.total_pivots)
            })
        });
    }
    group.finish();
}

fn bench_warm_start_reuse(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_warm_start_reuse_grid50_r2");
    group.sample_size(10);
    let inst = uniform_grid(50);
    let cache = solve_local_lps(&inst, &LocalLpOptions::new(2)).unwrap().basis_cache();
    group.bench_function("cold", |b| {
        b.iter(|| {
            let batch = solve_local_lps(&inst, &LocalLpOptions::new(2)).unwrap();
            std::hint::black_box(batch.stats.total_pivots)
        })
    });
    group.bench_function("reuse-cache", |b| {
        b.iter(|| {
            let batch = solve_local_lps_reusing(&inst, &LocalLpOptions::new(2), &cache).unwrap();
            // The acceptance property: re-solving from the cache must save
            // simplex iterations on this workload.
            assert!(batch.stats.warm_accepted > 0);
            std::hint::black_box(batch.stats.total_pivots)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_backends_on_grid50,
    bench_shard_count_sweep,
    bench_warm_start_reuse
);
criterion_main!(benches);
