//! Benchmark for experiment E5: the Section 2 sensor-network application —
//! instance generation, the safe algorithm, local averaging and the exact
//! baseline as the deployment grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use maxmin_local_lp::prelude::*;
use mmlp_bench::{bench_rng, sensor_fixture};

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_sensor_generation");
    group.sample_size(20);
    for sensors in [60usize, 120] {
        group.bench_with_input(BenchmarkId::from_parameter(sensors), &sensors, |b, &sensors| {
            b.iter(|| {
                let cfg = SensorNetworkConfig { num_sensors: sensors, ..Default::default() };
                std::hint::black_box(sensor_network_instance(&cfg, &mut bench_rng(5)).num_links())
            })
        });
    }
    group.finish();
}

fn bench_algorithms_on_sensor_network(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_sensor_algorithms");
    group.sample_size(10);
    let network = sensor_fixture(90);
    let inst = &network.instance;
    group.bench_function("safe", |b| {
        b.iter(|| std::hint::black_box(inst.objective(&safe_algorithm(inst)).unwrap()))
    });
    group.bench_function("local_averaging_r1", |b| {
        b.iter(|| {
            let r = local_averaging(inst, &LocalAveragingOptions::new(1)).unwrap();
            std::hint::black_box(inst.objective(&r.solution).unwrap())
        })
    });
    group.bench_function("optimum_simplex", |b| {
        b.iter(|| std::hint::black_box(solve_maxmin(inst).unwrap().objective))
    });
    group.finish();
}

criterion_group!(benches, bench_generation, bench_algorithms_on_sensor_network);
criterion_main!(benches);
