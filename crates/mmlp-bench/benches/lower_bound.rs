//! Benchmark for experiments E2/E3: building the Theorem 1 / Corollary 2
//! adversarial instances `S`, deriving `S'` and checking the alternating
//! solution.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use maxmin_local_lp::prelude::*;
use mmlp_bench::bench_rng;

fn corollary_config(delta: usize) -> LowerBoundConfig {
    LowerBoundConfig {
        max_resource_support: delta,
        max_party_support: 2,
        local_horizon: 1,
        tree_radius: 2,
    }
}

fn bench_build_s(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_build_construction_s");
    group.sample_size(10);
    for delta in [3usize, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(delta), &delta, |b, &delta| {
            b.iter(|| {
                let lb = LowerBoundInstance::build(corollary_config(delta), &mut bench_rng(7));
                std::hint::black_box(lb.instance.num_agents())
            })
        });
    }
    group.finish();
}

fn bench_derive_s_prime(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_derive_s_prime");
    group.sample_size(10);
    let lb = LowerBoundInstance::build(corollary_config(3), &mut bench_rng(8));
    let x = safe_algorithm(&lb.instance);
    group.bench_function("select_restrict_verify", |b| {
        b.iter(|| {
            let sub = lb.sub_instance(&x);
            let x_hat = alternating_solution(&sub);
            std::hint::black_box(sub.instance.objective(&x_hat).unwrap())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_build_s, bench_derive_s_prime);
criterion_main!(benches);
