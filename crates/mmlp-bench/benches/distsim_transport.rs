//! Benchmark for the distributed simulator's typed-message tier: the
//! radius-2 gathering protocol through the `mmlp/sim-round@1` stage on the
//! in-process backends, the in-memory loopback transport and the subprocess
//! backend in lockstep vs overlapped dispatch — what a synchronous round
//! costs per boundary crossed.
//!
//! The subprocess rows need a worker binary (`mmlp-worker` next to the
//! target directory, or `MMLP_WORKER_BIN`); where the environment cannot
//! spawn processes the backend's capability probe falls back to the
//! loopback transport with a logged skip, so the bench — and the CI smoke
//! run — never fails for platform reasons.

use criterion::{criterion_group, criterion_main, Criterion};
use maxmin_local_lp::prelude::*;
use mmlp_bench::bench_rng;

fn gather_setup(side: usize, radius: usize) -> (Network, GatherProgram) {
    let cfg = GridConfig { side_lengths: vec![side, side], torus: false, random_weights: true };
    let inst = grid_instance(&cfg, &mut bench_rng(10));
    let (h, _) = communication_hypergraph(&inst);
    (Network::from_hypergraph(&h), GatherProgram::new(&inst, radius))
}

fn bench_gather_rounds_on_grid15(c: &mut Criterion) {
    let mut group = c.benchmark_group("e10_distsim_rounds_grid15_r2");
    group.sample_size(10);
    let (network, program) = gather_setup(15, 2);
    let simulator = Simulator::sequential();

    group.bench_function("closure-tier", |b| {
        b.iter(|| {
            let run = simulator.run(&network, &program).unwrap();
            std::hint::black_box(run.messages)
        })
    });
    group.bench_function("wire-sequential", |b| {
        b.iter(|| {
            let run = simulator.run_wire_on(&network, &program, &Sequential).unwrap();
            std::hint::black_box(run.messages)
        })
    });
    group.bench_function("wire-sharded-4", |b| {
        let backend = Sharded::new(4, ParallelConfig::default());
        b.iter(|| {
            let run = simulator.run_wire_on(&network, &program, &backend).unwrap();
            std::hint::black_box(run.messages)
        })
    });
    group.bench_function("wire-loopback-4", |b| {
        let backend = LoopbackBackend::new(engine_registry(), 4).with_workers(2);
        b.iter(|| {
            let run = simulator.run_wire_on(&network, &program, &backend).unwrap();
            std::hint::black_box(run.messages)
        })
    });
    // One pooled backend per dispatch mode: workers persist across
    // iterations, so the numbers measure the protocol, not process spawns.
    group.bench_function("wire-subprocess-lockstep-2", |b| {
        let backend = SubprocessBackend::new(2, engine_registry()).lockstep();
        b.iter(|| {
            let run = simulator.run_wire_on(&network, &program, &backend).unwrap();
            std::hint::black_box(run.messages)
        })
    });
    group.bench_function("wire-subprocess-overlapped-2", |b| {
        let backend = SubprocessBackend::new(2, engine_registry());
        b.iter(|| {
            let run = simulator.run_wire_on(&network, &program, &backend).unwrap();
            std::hint::black_box(run.messages)
        })
    });
    group.finish();
}

fn bench_sim_round_codecs(c: &mut Criterion) {
    use maxmin_local_lp::distsim::gather::{put_local_view, read_local_view};
    use maxmin_local_lp::parallel::wire::ByteReader;
    let mut group = c.benchmark_group("e10_sim_round_codecs");
    let (network, program) = gather_setup(15, 2);
    // The heaviest payload of a run: a halting node's full radius-2 view.
    let views = Simulator::sequential().run(&network, &program).unwrap().outputs;
    let view = &views[views.len() / 2];
    let mut bytes = Vec::new();
    put_local_view(&mut bytes, view);
    group.bench_function("encode_radius2_view", |b| {
        b.iter(|| {
            let mut out = Vec::new();
            put_local_view(&mut out, view);
            std::hint::black_box(out.len())
        })
    });
    group.bench_function("decode_radius2_view", |b| {
        b.iter(|| {
            let decoded = read_local_view(&mut ByteReader::new(&bytes)).unwrap();
            std::hint::black_box(decoded.len())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_gather_rounds_on_grid15, bench_sim_round_codecs);
criterion_main!(benches);
