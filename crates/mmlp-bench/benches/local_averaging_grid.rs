//! Benchmark for experiment E4: the local averaging algorithm on tori as a
//! function of the radius `R` (per-agent local LPs dominate the cost).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use maxmin_local_lp::prelude::*;
use mmlp_bench::torus_fixture;

fn bench_local_averaging_radius(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_local_averaging_radius");
    group.sample_size(10);
    let inst = torus_fixture(8);
    for radius in [1usize, 2, 3] {
        group.bench_with_input(BenchmarkId::from_parameter(radius), &radius, |b, &radius| {
            b.iter(|| {
                let result = local_averaging(&inst, &LocalAveragingOptions::new(radius)).unwrap();
                std::hint::black_box(inst.objective(&result.solution).unwrap())
            })
        });
    }
    group.finish();
}

fn bench_growth_profile(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_growth_profile");
    group.sample_size(20);
    for side in [8usize, 12, 16] {
        let inst = torus_fixture(side);
        let (h, _) = communication_hypergraph(&inst);
        group.bench_with_input(BenchmarkId::from_parameter(side), &h, |b, h| {
            b.iter(|| std::hint::black_box(growth_profile(h, 4).gamma[4]))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_local_averaging_radius, bench_growth_profile);
criterion_main!(benches);
