//! Validated construction of [`MaxMinInstance`] values.
//!
//! All instance generators in `mmlp-instances` go through this builder.  The
//! builder enforces the paper's standing assumptions at construction time so
//! that every downstream consumer can rely on them:
//!
//! * every coefficient `a_iv`, `c_kv` is finite and non-negative,
//! * support sets are stored only for strictly positive coefficients,
//! * every resource has a non-empty support `V_i`,
//! * every party has a non-empty support `V_k`,
//! * every agent consumes at least one resource (`I_v ≠ ∅`), otherwise its
//!   variable would be unbounded and the LP degenerate.

use crate::error::ValidationError;
use crate::ids::{AgentId, PartyId, ResourceId};
use crate::instance::{Agent, MaxMinInstance, Party, Resource};

/// Incremental builder for [`MaxMinInstance`].
///
/// ```
/// use mmlp_core::InstanceBuilder;
///
/// let mut b = InstanceBuilder::new();
/// let v = b.add_agent();
/// let i = b.add_resource();
/// let k = b.add_party();
/// b.set_consumption(i, v, 0.5);
/// b.set_benefit(k, v, 2.0);
/// let instance = b.build().unwrap();
/// assert_eq!(instance.num_agents(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct InstanceBuilder {
    agents: Vec<Agent>,
    resources: Vec<Resource>,
    parties: Vec<Party>,
    errors: Vec<ValidationError>,
    allow_unconstrained_agents: bool,
}

impl InstanceBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder with pre-allocated capacity for the given numbers of
    /// agents, resources and parties.
    pub fn with_capacity(agents: usize, resources: usize, parties: usize) -> Self {
        Self {
            agents: Vec::with_capacity(agents),
            resources: Vec::with_capacity(resources),
            parties: Vec::with_capacity(parties),
            errors: Vec::new(),
            allow_unconstrained_agents: false,
        }
    }

    /// Permits agents with an empty resource support set `I_v`.
    ///
    /// The paper's standing assumption excludes such agents (their variables
    /// are unbounded), and almost every generator keeps the default strict
    /// behaviour.  The one legitimate exception is the sub-instance `S'` of
    /// the lower-bound proof (Section 4.3), which restricts `S` to an agent
    /// set `V'` and keeps only the resources *fully contained* in `V'` — so
    /// agents on the boundary of `V'` may lose all their constraints.
    pub fn allow_unconstrained_agents(&mut self) -> &mut Self {
        self.allow_unconstrained_agents = true;
        self
    }

    /// Declares a new agent and returns its identifier.
    pub fn add_agent(&mut self) -> AgentId {
        let id = AgentId::new(self.agents.len());
        self.agents.push(Agent::default());
        id
    }

    /// Declares `n` new agents and returns their identifiers.
    pub fn add_agents(&mut self, n: usize) -> Vec<AgentId> {
        (0..n).map(|_| self.add_agent()).collect()
    }

    /// Declares a new resource and returns its identifier.
    pub fn add_resource(&mut self) -> ResourceId {
        let id = ResourceId::new(self.resources.len());
        self.resources.push(Resource::default());
        id
    }

    /// Declares a new beneficiary party and returns its identifier.
    pub fn add_party(&mut self) -> PartyId {
        let id = PartyId::new(self.parties.len());
        self.parties.push(Party::default());
        id
    }

    /// Number of agents declared so far.
    pub fn num_agents(&self) -> usize {
        self.agents.len()
    }

    /// Number of resources declared so far.
    pub fn num_resources(&self) -> usize {
        self.resources.len()
    }

    /// Number of parties declared so far.
    pub fn num_parties(&self) -> usize {
        self.parties.len()
    }

    /// Sets the consumption coefficient `a_iv`.
    ///
    /// A zero coefficient is interpreted as "not in the support set" and is
    /// silently ignored; negative or non-finite values are recorded as
    /// validation errors and reported by [`build`](Self::build).
    pub fn set_consumption(&mut self, i: ResourceId, v: AgentId, a_iv: f64) -> &mut Self {
        if i.index() >= self.resources.len() || v.index() >= self.agents.len() {
            self.errors.push(ValidationError::UnknownId(format!("a[{i},{v}]")));
            return self;
        }
        if !a_iv.is_finite() || a_iv < 0.0 {
            self.errors.push(ValidationError::InvalidConsumption {
                resource: i,
                agent: v,
                value: a_iv,
            });
            return self;
        }
        if a_iv == 0.0 {
            return self;
        }
        if self.resources[i.index()].agents.iter().any(|(u, _)| *u == v) {
            self.errors
                .push(ValidationError::DuplicateCoefficient(format!("a[{i},{v}]")));
            return self;
        }
        self.resources[i.index()].agents.push((v, a_iv));
        self.agents[v.index()].resources.push((i, a_iv));
        self
    }

    /// Sets the benefit coefficient `c_kv`.
    ///
    /// Zero coefficients are ignored; negative or non-finite values are
    /// recorded as validation errors.
    pub fn set_benefit(&mut self, k: PartyId, v: AgentId, c_kv: f64) -> &mut Self {
        if k.index() >= self.parties.len() || v.index() >= self.agents.len() {
            self.errors.push(ValidationError::UnknownId(format!("c[{k},{v}]")));
            return self;
        }
        if !c_kv.is_finite() || c_kv < 0.0 {
            self.errors
                .push(ValidationError::InvalidBenefit { party: k, agent: v, value: c_kv });
            return self;
        }
        if c_kv == 0.0 {
            return self;
        }
        if self.parties[k.index()].agents.iter().any(|(u, _)| *u == v) {
            self.errors
                .push(ValidationError::DuplicateCoefficient(format!("c[{k},{v}]")));
            return self;
        }
        self.parties[k.index()].agents.push((v, c_kv));
        self.agents[v.index()].parties.push((k, c_kv));
        self
    }

    /// Convenience: declares a resource whose support is exactly the given
    /// agents with the given coefficients.
    pub fn add_resource_with(&mut self, entries: &[(AgentId, f64)]) -> ResourceId {
        let i = self.add_resource();
        for (v, a) in entries {
            self.set_consumption(i, *v, *a);
        }
        i
    }

    /// Convenience: declares a party whose support is exactly the given agents
    /// with the given coefficients.
    pub fn add_party_with(&mut self, entries: &[(AgentId, f64)]) -> PartyId {
        let k = self.add_party();
        for (v, c) in entries {
            self.set_benefit(k, *v, *c);
        }
        k
    }

    /// Finalises the instance, verifying the paper's non-degeneracy
    /// assumptions.  Returns the first violation encountered.
    pub fn build(self) -> Result<MaxMinInstance, ValidationError> {
        if let Some(err) = self.errors.into_iter().next() {
            return Err(err);
        }
        for (idx, res) in self.resources.iter().enumerate() {
            if res.agents.is_empty() {
                return Err(ValidationError::EmptyResourceSupport(ResourceId::new(idx)));
            }
        }
        for (idx, p) in self.parties.iter().enumerate() {
            if p.agents.is_empty() {
                return Err(ValidationError::EmptyPartySupport(PartyId::new(idx)));
            }
        }
        if !self.allow_unconstrained_agents {
            for (idx, agent) in self.agents.iter().enumerate() {
                if agent.resources.is_empty() {
                    return Err(ValidationError::EmptyAgentResourceSupport(AgentId::new(idx)));
                }
            }
        }
        Ok(MaxMinInstance { agents: self.agents, resources: self.resources, parties: self.parties })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{agent, party, resource};

    #[test]
    fn builds_minimal_valid_instance() {
        let mut b = InstanceBuilder::new();
        let v = b.add_agent();
        let i = b.add_resource();
        let k = b.add_party();
        b.set_consumption(i, v, 1.0);
        b.set_benefit(k, v, 1.0);
        let inst = b.build().unwrap();
        assert_eq!(inst.num_agents(), 1);
        assert_eq!(inst.num_resources(), 1);
        assert_eq!(inst.num_parties(), 1);
    }

    #[test]
    fn rejects_negative_consumption() {
        let mut b = InstanceBuilder::new();
        let v = b.add_agent();
        let i = b.add_resource();
        let k = b.add_party();
        b.set_consumption(i, v, -0.5);
        b.set_benefit(k, v, 1.0);
        assert!(matches!(b.build(), Err(ValidationError::InvalidConsumption { .. })));
    }

    #[test]
    fn rejects_nan_benefit() {
        let mut b = InstanceBuilder::new();
        let v = b.add_agent();
        let i = b.add_resource();
        let k = b.add_party();
        b.set_consumption(i, v, 1.0);
        b.set_benefit(k, v, f64::NAN);
        assert!(matches!(b.build(), Err(ValidationError::InvalidBenefit { .. })));
    }

    #[test]
    fn rejects_empty_resource_support() {
        let mut b = InstanceBuilder::new();
        let v = b.add_agent();
        let _i_unused = b.add_resource();
        let i = b.add_resource();
        let k = b.add_party();
        b.set_consumption(i, v, 1.0);
        b.set_benefit(k, v, 1.0);
        assert_eq!(b.build(), Err(ValidationError::EmptyResourceSupport(resource(0))));
    }

    #[test]
    fn rejects_empty_party_support() {
        let mut b = InstanceBuilder::new();
        let v = b.add_agent();
        let i = b.add_resource();
        let _k_unused = b.add_party();
        b.set_consumption(i, v, 1.0);
        assert_eq!(b.build(), Err(ValidationError::EmptyPartySupport(party(0))));
    }

    #[test]
    fn rejects_agent_without_resources() {
        let mut b = InstanceBuilder::new();
        let v0 = b.add_agent();
        let v1 = b.add_agent();
        let i = b.add_resource();
        let k = b.add_party();
        b.set_consumption(i, v0, 1.0);
        b.set_benefit(k, v0, 1.0);
        b.set_benefit(k, v1, 1.0);
        assert_eq!(b.build(), Err(ValidationError::EmptyAgentResourceSupport(agent(1))));
    }

    #[test]
    fn unconstrained_agents_can_be_allowed_explicitly() {
        let mut b = InstanceBuilder::new();
        let v0 = b.add_agent();
        let v1 = b.add_agent();
        let i = b.add_resource();
        let k = b.add_party();
        b.set_consumption(i, v0, 1.0);
        b.set_benefit(k, v0, 1.0);
        b.set_benefit(k, v1, 1.0);
        b.allow_unconstrained_agents();
        let inst = b.build().unwrap();
        assert_eq!(inst.agent_resources(agent(1)).count(), 0);
        assert_eq!(inst.num_agents(), 2);
    }

    #[test]
    fn rejects_unknown_ids() {
        let mut b = InstanceBuilder::new();
        let v = b.add_agent();
        let i = b.add_resource();
        let k = b.add_party();
        b.set_consumption(i, v, 1.0);
        b.set_benefit(k, v, 1.0);
        b.set_consumption(resource(99), v, 1.0);
        assert!(matches!(b.build(), Err(ValidationError::UnknownId(_))));
    }

    #[test]
    fn rejects_duplicate_coefficient() {
        let mut b = InstanceBuilder::new();
        let v = b.add_agent();
        let i = b.add_resource();
        let k = b.add_party();
        b.set_consumption(i, v, 1.0);
        b.set_consumption(i, v, 2.0);
        b.set_benefit(k, v, 1.0);
        assert!(matches!(b.build(), Err(ValidationError::DuplicateCoefficient(_))));
    }

    #[test]
    fn zero_coefficients_are_ignored() {
        let mut b = InstanceBuilder::new();
        let v0 = b.add_agent();
        let v1 = b.add_agent();
        let i = b.add_resource();
        let k = b.add_party();
        b.set_consumption(i, v0, 1.0);
        b.set_consumption(i, v1, 1.0);
        b.set_benefit(k, v0, 1.0);
        b.set_benefit(k, v1, 0.0); // ignored
        let inst = b.build().unwrap();
        assert_eq!(inst.party_support(party(0)).count(), 1);
        assert_eq!(inst.benefit(party(0), agent(1)), 0.0);
    }

    #[test]
    fn bulk_helpers_build_supports() {
        let mut b = InstanceBuilder::new();
        let vs = b.add_agents(3);
        let i = b.add_resource_with(&[(vs[0], 1.0), (vs[1], 1.0), (vs[2], 1.0)]);
        let k = b.add_party_with(&[(vs[0], 0.5), (vs[2], 0.5)]);
        let inst = b.build().unwrap();
        assert_eq!(inst.resource_support(i).count(), 3);
        assert_eq!(inst.party_support(k).count(), 2);
        let d = inst.degree_bounds();
        assert_eq!(d.max_resource_support, 3);
        assert_eq!(d.max_party_support, 2);
    }

    #[test]
    fn with_capacity_builder_is_equivalent() {
        let mut b = InstanceBuilder::with_capacity(2, 1, 1);
        let vs = b.add_agents(2);
        let i = b.add_resource();
        let k = b.add_party();
        b.set_consumption(i, vs[0], 1.0);
        b.set_consumption(i, vs[1], 1.0);
        b.set_benefit(k, vs[0], 1.0);
        let inst = b.build().unwrap();
        assert_eq!(inst.num_agents(), 2);
    }
}
