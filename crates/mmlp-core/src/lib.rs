//! Core data model for max-min linear programs.
//!
//! A *max-min LP* (Floréen, Kaski, Musto, Suomela 2008) is the optimisation
//! problem
//!
//! ```text
//! maximise   ω = min_{k ∈ K}  Σ_{v ∈ V} c_kv x_v
//! subject to              Σ_{v ∈ V} a_iv x_v ≤ 1     for each i ∈ I
//!                         x_v ≥ 0                     for each v ∈ V
//! ```
//!
//! with non-negative coefficients and bounded-size support sets.  Each
//! `v ∈ V` is an **agent**, each `i ∈ I` a **resource** (constraint) and each
//! `k ∈ K` a **beneficiary party**.
//!
//! This crate contains the problem representation ([`MaxMinInstance`]), the
//! builder used by all instance generators ([`InstanceBuilder`]), solution
//! vectors and their evaluation ([`Solution`], [`Evaluation`]), degree
//! statistics ([`DegreeBounds`]) and the closed-form bounds proved in the
//! paper ([`bounds`]).
//!
//! The crate is deliberately free of any algorithmic machinery: solvers live
//! in `mmlp-lp` and `mmlp-algorithms`, communication structure in
//! `mmlp-hypergraph`, and the distributed execution model in `mmlp-distsim`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bounds;
pub mod builder;
pub mod canonical;
pub mod error;
pub mod ids;
pub mod instance;
pub mod solution;

pub use builder::InstanceBuilder;
pub use canonical::{
    canonical_form, canonical_key, quantise_weight, quasi_canonical_form, CanonicalForm,
    CanonicalKey, QuasiCanonicalForm,
};
pub use error::{CoreError, ValidationError};
pub use ids::{AgentId, PartyId, ResourceId};
pub use instance::{Agent, DegreeBounds, MaxMinInstance, Party, Resource};
pub use solution::{Evaluation, FeasibilityReport, Solution};

/// Default absolute tolerance used when checking feasibility of floating
/// point solutions.
pub const DEFAULT_TOLERANCE: f64 = 1e-7;
