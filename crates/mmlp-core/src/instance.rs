//! The sparse representation of a max-min LP instance.
//!
//! The instance stores both orientations of the two sparse coefficient
//! matrices: for every agent `v` the lists `I_v`/`K_v` with the coefficients
//! `a_iv`/`c_kv`, and for every resource `i` / party `k` the support lists
//! `V_i` / `V_k`.  Keeping both orientations makes every access pattern used
//! by the algorithms (local views, constraint checks, benefit sums) a linear
//! scan over a short list — the paper assumes all four degrees are bounded by
//! constants, so these lists have constant length.

use crate::error::CoreError;
use crate::ids::{AgentId, PartyId, ResourceId};
use crate::solution::{Evaluation, FeasibilityReport, Solution};
use serde::{Deserialize, Serialize};

/// Per-agent view of the coefficients: the support sets `I_v` and `K_v`.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Agent {
    /// Resources consumed by this agent: pairs `(i, a_iv)` with `a_iv > 0`.
    pub resources: Vec<(ResourceId, f64)>,
    /// Parties benefited by this agent: pairs `(k, c_kv)` with `c_kv > 0`.
    pub parties: Vec<(PartyId, f64)>,
}

/// Per-resource view: the support set `V_i`.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Resource {
    /// Agents consuming this resource: pairs `(v, a_iv)` with `a_iv > 0`.
    pub agents: Vec<(AgentId, f64)>,
}

impl Resource {
    /// The support entries `(v, a_iv)` of this resource.
    pub fn members(&self) -> &[(AgentId, f64)] {
        &self.agents
    }
}

/// Per-party view: the support set `V_k`.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Party {
    /// Agents benefiting this party: pairs `(v, c_kv)` with `c_kv > 0`.
    pub agents: Vec<(AgentId, f64)>,
}

impl Party {
    /// The support entries `(v, c_kv)` of this party.
    pub fn members(&self) -> &[(AgentId, f64)] {
        &self.agents
    }
}

/// The four degree bounds `Δ_I^V`, `Δ_K^V`, `Δ_V^I`, `Δ_V^K` of an instance.
///
/// The names follow the quantities they bound rather than the paper's
/// superscript notation:
///
/// * [`max_resource_support`](DegreeBounds::max_resource_support) = `max_i |V_i|`
///   (the paper's `Δ_I^V`, the quantity appearing in the safe algorithm's
///   approximation ratio and in Theorem 1),
/// * [`max_party_support`](DegreeBounds::max_party_support) = `max_k |V_k|`
///   (the paper's `Δ_K^V`),
/// * [`max_agent_resources`](DegreeBounds::max_agent_resources) = `max_v |I_v|`,
/// * [`max_agent_parties`](DegreeBounds::max_agent_parties) = `max_v |K_v|`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DegreeBounds {
    /// `max_i |V_i|`: the largest number of agents sharing one resource.
    pub max_resource_support: usize,
    /// `max_k |V_k|`: the largest number of agents serving one party.
    pub max_party_support: usize,
    /// `max_v |I_v|`: the largest number of resources one agent consumes.
    pub max_agent_resources: usize,
    /// `max_v |K_v|`: the largest number of parties one agent serves.
    pub max_agent_parties: usize,
}

/// A max-min LP instance with sparse, doubly-indexed coefficients.
///
/// Construct instances through [`InstanceBuilder`](crate::InstanceBuilder),
/// which validates the non-degeneracy assumptions of the paper (non-negative
/// coefficients, non-empty `I_v`, `V_i`, `V_k`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MaxMinInstance {
    pub(crate) agents: Vec<Agent>,
    pub(crate) resources: Vec<Resource>,
    pub(crate) parties: Vec<Party>,
}

impl MaxMinInstance {
    /// Number of agents `|V|`.
    #[inline]
    pub fn num_agents(&self) -> usize {
        self.agents.len()
    }

    /// Number of resources `|I|`.
    #[inline]
    pub fn num_resources(&self) -> usize {
        self.resources.len()
    }

    /// Number of beneficiary parties `|K|`.
    #[inline]
    pub fn num_parties(&self) -> usize {
        self.parties.len()
    }

    /// Iterator over all agent identifiers.
    pub fn agent_ids(&self) -> impl Iterator<Item = AgentId> + '_ {
        (0..self.agents.len()).map(AgentId::new)
    }

    /// Iterator over all resource identifiers.
    pub fn resource_ids(&self) -> impl Iterator<Item = ResourceId> + '_ {
        (0..self.resources.len()).map(ResourceId::new)
    }

    /// Iterator over all party identifiers.
    pub fn party_ids(&self) -> impl Iterator<Item = PartyId> + '_ {
        (0..self.parties.len()).map(PartyId::new)
    }

    /// Access the per-agent record for `v`.
    #[inline]
    pub fn agent(&self, v: AgentId) -> &Agent {
        &self.agents[v.index()]
    }

    /// Access the per-resource record for `i`.
    #[inline]
    pub fn resource(&self, i: ResourceId) -> &Resource {
        &self.resources[i.index()]
    }

    /// Access the per-party record for `k`.
    #[inline]
    pub fn party(&self, k: PartyId) -> &Party {
        &self.parties[k.index()]
    }

    /// The consumption coefficient `a_iv`, or `0` if `v ∉ V_i`.
    pub fn consumption(&self, i: ResourceId, v: AgentId) -> f64 {
        self.resources[i.index()]
            .agents
            .iter()
            .find(|(u, _)| *u == v)
            .map(|(_, a)| *a)
            .unwrap_or(0.0)
    }

    /// The benefit coefficient `c_kv`, or `0` if `v ∉ V_k`.
    pub fn benefit(&self, k: PartyId, v: AgentId) -> f64 {
        self.parties[k.index()]
            .agents
            .iter()
            .find(|(u, _)| *u == v)
            .map(|(_, c)| *c)
            .unwrap_or(0.0)
    }

    /// The support set `V_i = {v : a_iv > 0}` of resource `i`.
    pub fn resource_support(&self, i: ResourceId) -> impl Iterator<Item = AgentId> + '_ {
        self.resources[i.index()].agents.iter().map(|(v, _)| *v)
    }

    /// The support set `V_k = {v : c_kv > 0}` of party `k`.
    pub fn party_support(&self, k: PartyId) -> impl Iterator<Item = AgentId> + '_ {
        self.parties[k.index()].agents.iter().map(|(v, _)| *v)
    }

    /// The support set `I_v = {i : a_iv > 0}` of agent `v`.
    pub fn agent_resources(&self, v: AgentId) -> impl Iterator<Item = ResourceId> + '_ {
        self.agents[v.index()].resources.iter().map(|(i, _)| *i)
    }

    /// The support set `K_v = {k : c_kv > 0}` of agent `v`.
    pub fn agent_parties(&self, v: AgentId) -> impl Iterator<Item = PartyId> + '_ {
        self.agents[v.index()].parties.iter().map(|(k, _)| *k)
    }

    /// Total number of non-zero consumption coefficients `a_iv`.
    pub fn num_consumption_entries(&self) -> usize {
        self.resources.iter().map(|r| r.agents.len()).sum()
    }

    /// Total number of non-zero benefit coefficients `c_kv`.
    pub fn num_benefit_entries(&self) -> usize {
        self.parties.iter().map(|p| p.agents.len()).sum()
    }

    /// Computes the four degree bounds of this instance.
    pub fn degree_bounds(&self) -> DegreeBounds {
        DegreeBounds {
            max_resource_support: self.resources.iter().map(|r| r.agents.len()).max().unwrap_or(0),
            max_party_support: self.parties.iter().map(|p| p.agents.len()).max().unwrap_or(0),
            max_agent_resources: self.agents.iter().map(|a| a.resources.len()).max().unwrap_or(0),
            max_agent_parties: self.agents.iter().map(|a| a.parties.len()).max().unwrap_or(0),
        }
    }

    /// Resource usage `Σ_v a_iv x_v` of resource `i` under solution `x`.
    pub fn resource_usage(&self, i: ResourceId, x: &Solution) -> f64 {
        self.resources[i.index()]
            .agents
            .iter()
            .map(|(v, a)| a * x.activity(*v))
            .sum()
    }

    /// Benefit `Σ_v c_kv x_v` received by party `k` under solution `x`.
    pub fn party_benefit(&self, k: PartyId, x: &Solution) -> f64 {
        self.parties[k.index()]
            .agents
            .iter()
            .map(|(v, c)| c * x.activity(*v))
            .sum()
    }

    /// The max-min objective `ω = min_k Σ_v c_kv x_v` of solution `x`.
    ///
    /// Returns an error if the instance has no parties (the minimum over the
    /// empty set is undefined) or the solution is malformed.
    pub fn objective(&self, x: &Solution) -> Result<f64, CoreError> {
        self.check_solution_shape(x)?;
        if self.parties.is_empty() {
            return Err(CoreError::NoParties);
        }
        Ok(self
            .party_ids()
            .map(|k| self.party_benefit(k, x))
            .fold(f64::INFINITY, f64::min))
    }

    /// Full evaluation of a solution: objective, per-party benefits,
    /// per-resource usages, worst violation.
    pub fn evaluate(&self, x: &Solution) -> Result<Evaluation, CoreError> {
        self.check_solution_shape(x)?;
        if self.parties.is_empty() {
            return Err(CoreError::NoParties);
        }
        let party_benefits: Vec<f64> = self.party_ids().map(|k| self.party_benefit(k, x)).collect();
        let resource_usages: Vec<f64> =
            self.resource_ids().map(|i| self.resource_usage(i, x)).collect();
        let objective = party_benefits.iter().copied().fold(f64::INFINITY, f64::min);
        let max_usage = resource_usages.iter().copied().fold(0.0f64, f64::max);
        let min_activity = x.activities().iter().copied().fold(f64::INFINITY, f64::min);
        Ok(Evaluation {
            objective,
            party_benefits,
            resource_usages,
            max_resource_usage: max_usage,
            min_activity: if x.is_empty() { 0.0 } else { min_activity },
        })
    }

    /// Checks feasibility of `x` up to absolute tolerance `tol`:
    /// `Σ_v a_iv x_v ≤ 1 + tol` for every resource and `x_v ≥ -tol` for every
    /// agent.
    pub fn feasibility(&self, x: &Solution, tol: f64) -> Result<FeasibilityReport, CoreError> {
        self.check_solution_shape(x)?;
        let mut worst_capacity_violation = 0.0f64;
        let mut violated_resources = Vec::new();
        for i in self.resource_ids() {
            let usage = self.resource_usage(i, x);
            let excess = usage - 1.0;
            if excess > tol {
                violated_resources.push((i, usage));
            }
            worst_capacity_violation = worst_capacity_violation.max(excess);
        }
        let mut worst_negativity = 0.0f64;
        let mut negative_agents = Vec::new();
        for v in self.agent_ids() {
            let value = x.activity(v);
            if value < -tol {
                negative_agents.push((v, value));
            }
            worst_negativity = worst_negativity.max(-value);
        }
        Ok(FeasibilityReport {
            tolerance: tol,
            violated_resources,
            negative_agents,
            worst_capacity_violation: worst_capacity_violation.max(0.0),
            worst_negativity: worst_negativity.max(0.0),
        })
    }

    /// `true` iff `x` is feasible up to absolute tolerance `tol`.
    pub fn is_feasible(&self, x: &Solution, tol: f64) -> bool {
        matches!(self.feasibility(x, tol), Ok(report) if report.is_feasible())
    }

    /// Restricts the instance to a subset of agents.
    ///
    /// The returned instance contains the agents in `keep_agents` (re-indexed
    /// densely in the order given), every resource `i` whose support
    /// intersects the kept agents (with the coefficients of dropped agents
    /// removed), and every party `k` whose support is **entirely** contained
    /// in the kept agents.  This matches the sub-instance construction used in
    /// Section 4.3 of the paper (the instance `S'`), where a resource
    /// restricted to fewer agents only becomes easier to satisfy, whereas a
    /// partially-covered party would change the objective.
    ///
    /// Returns the sub-instance together with the map from new agent ids to
    /// the original agent ids.
    pub fn restrict_to_agents(&self, keep_agents: &[AgentId]) -> (MaxMinInstance, Vec<AgentId>) {
        let mut old_to_new = vec![usize::MAX; self.num_agents()];
        for (new_idx, v) in keep_agents.iter().enumerate() {
            old_to_new[v.index()] = new_idx;
        }
        let mut agents = vec![Agent::default(); keep_agents.len()];
        let mut resources = Vec::new();
        for (old_i, res) in self.resources.iter().enumerate() {
            let kept: Vec<(AgentId, f64)> = res
                .agents
                .iter()
                .filter(|(v, _)| old_to_new[v.index()] != usize::MAX)
                .map(|(v, a)| (AgentId::new(old_to_new[v.index()]), *a))
                .collect();
            if kept.is_empty() {
                continue;
            }
            let new_i = ResourceId::new(resources.len());
            for (v, a) in &kept {
                agents[v.index()].resources.push((new_i, *a));
            }
            resources.push(Resource { agents: kept });
            let _ = old_i;
        }
        let mut parties = Vec::new();
        for party in &self.parties {
            let all_kept = party.agents.iter().all(|(v, _)| old_to_new[v.index()] != usize::MAX);
            if !all_kept {
                continue;
            }
            let kept: Vec<(AgentId, f64)> = party
                .agents
                .iter()
                .map(|(v, c)| (AgentId::new(old_to_new[v.index()]), *c))
                .collect();
            let new_k = PartyId::new(parties.len());
            for (v, c) in &kept {
                agents[v.index()].parties.push((new_k, *c));
            }
            parties.push(Party { agents: kept });
        }
        (MaxMinInstance { agents, resources, parties }, keep_agents.to_vec())
    }

    /// The same instance with agent identifiers renamed by `perm`
    /// (`perm[old] = new`); support lists are re-sorted by the new ids so the
    /// result is a well-formed instance in its own right.
    ///
    /// This is the "agent-ID permutation" the canonicalisation layer
    /// ([`crate::canonical`]) is invariant under; it is used by the
    /// property-based tests to state that invariant.
    ///
    /// # Panics
    ///
    /// Panics if `perm` is not a permutation of `0..num_agents`.
    pub fn permute_agents(&self, perm: &[usize]) -> MaxMinInstance {
        let n = self.num_agents();
        assert_eq!(perm.len(), n, "permutation length mismatch");
        let mut seen = vec![false; n];
        for &p in perm {
            assert!(p < n && !seen[p], "not a permutation of 0..{n}");
            seen[p] = true;
        }
        let mut agents = vec![Agent::default(); n];
        let relabel = |entries: &[(AgentId, f64)]| -> Vec<(AgentId, f64)> {
            let mut out: Vec<(AgentId, f64)> =
                entries.iter().map(|(v, c)| (AgentId::new(perm[v.index()]), *c)).collect();
            out.sort_by_key(|(v, _)| *v);
            out
        };
        let resources: Vec<Resource> = self
            .resources
            .iter()
            .map(|r| Resource { agents: relabel(&r.agents) })
            .collect();
        let parties: Vec<Party> =
            self.parties.iter().map(|p| Party { agents: relabel(&p.agents) }).collect();
        for (idx, r) in resources.iter().enumerate() {
            for (v, a) in &r.agents {
                agents[v.index()].resources.push((ResourceId::new(idx), *a));
            }
        }
        for (idx, p) in parties.iter().enumerate() {
            for (v, c) in &p.agents {
                agents[v.index()].parties.push((PartyId::new(idx), *c));
            }
        }
        MaxMinInstance { agents, resources, parties }
    }

    fn check_solution_shape(&self, x: &Solution) -> Result<(), CoreError> {
        if x.len() != self.num_agents() {
            return Err(CoreError::SolutionLengthMismatch {
                expected: self.num_agents(),
                actual: x.len(),
            });
        }
        for v in self.agent_ids() {
            let value = x.activity(v);
            if !value.is_finite() {
                return Err(CoreError::NonFiniteActivity { agent: v, value });
            }
        }
        Ok(())
    }
}

impl DegreeBounds {
    /// The approximation ratio guaranteed by the safe algorithm
    /// (`Δ_I^V = max_i |V_i|`, Section 4 of the paper).
    pub fn safe_algorithm_ratio(&self) -> f64 {
        self.max_resource_support as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::InstanceBuilder;
    use crate::ids::{agent, party, resource};

    /// Small instance used throughout the tests:
    /// two agents, one shared resource, two parties (one per agent).
    fn two_agent_instance() -> MaxMinInstance {
        let mut b = InstanceBuilder::new();
        let v0 = b.add_agent();
        let v1 = b.add_agent();
        let i0 = b.add_resource();
        let k0 = b.add_party();
        let k1 = b.add_party();
        b.set_consumption(i0, v0, 1.0);
        b.set_consumption(i0, v1, 2.0);
        b.set_benefit(k0, v0, 1.0);
        b.set_benefit(k1, v1, 3.0);
        b.build().expect("valid instance")
    }

    #[test]
    fn counts_and_ids() {
        let inst = two_agent_instance();
        assert_eq!(inst.num_agents(), 2);
        assert_eq!(inst.num_resources(), 1);
        assert_eq!(inst.num_parties(), 2);
        assert_eq!(inst.agent_ids().count(), 2);
        assert_eq!(inst.resource_ids().count(), 1);
        assert_eq!(inst.party_ids().count(), 2);
    }

    #[test]
    fn coefficient_lookup() {
        let inst = two_agent_instance();
        assert_eq!(inst.consumption(resource(0), agent(0)), 1.0);
        assert_eq!(inst.consumption(resource(0), agent(1)), 2.0);
        assert_eq!(inst.benefit(party(0), agent(0)), 1.0);
        assert_eq!(inst.benefit(party(0), agent(1)), 0.0);
        assert_eq!(inst.benefit(party(1), agent(1)), 3.0);
    }

    #[test]
    fn support_sets() {
        let inst = two_agent_instance();
        let vi: Vec<_> = inst.resource_support(resource(0)).collect();
        assert_eq!(vi, vec![agent(0), agent(1)]);
        let iv: Vec<_> = inst.agent_resources(agent(1)).collect();
        assert_eq!(iv, vec![resource(0)]);
        let kv: Vec<_> = inst.agent_parties(agent(0)).collect();
        assert_eq!(kv, vec![party(0)]);
        let vk: Vec<_> = inst.party_support(party(1)).collect();
        assert_eq!(vk, vec![agent(1)]);
    }

    #[test]
    fn degree_bounds() {
        let inst = two_agent_instance();
        let d = inst.degree_bounds();
        assert_eq!(d.max_resource_support, 2);
        assert_eq!(d.max_party_support, 1);
        assert_eq!(d.max_agent_resources, 1);
        assert_eq!(d.max_agent_parties, 1);
        assert_eq!(d.safe_algorithm_ratio(), 2.0);
    }

    #[test]
    fn objective_and_evaluation() {
        let inst = two_agent_instance();
        // x = (0.5, 0.25): usage = 0.5 + 0.5 = 1.0 (tight), benefits = (0.5, 0.75).
        let x = Solution::new(vec![0.5, 0.25]);
        assert!((inst.objective(&x).unwrap() - 0.5).abs() < 1e-12);
        let eval = inst.evaluate(&x).unwrap();
        assert_eq!(eval.party_benefits.len(), 2);
        assert!((eval.party_benefits[0] - 0.5).abs() < 1e-12);
        assert!((eval.party_benefits[1] - 0.75).abs() < 1e-12);
        assert!((eval.max_resource_usage - 1.0).abs() < 1e-12);
        assert!(inst.is_feasible(&x, 1e-9));
    }

    #[test]
    fn infeasible_solution_is_detected() {
        let inst = two_agent_instance();
        let x = Solution::new(vec![1.0, 1.0]); // usage 3 > 1
        assert!(!inst.is_feasible(&x, 1e-9));
        let report = inst.feasibility(&x, 1e-9).unwrap();
        assert_eq!(report.violated_resources.len(), 1);
        assert!((report.worst_capacity_violation - 2.0).abs() < 1e-12);
    }

    #[test]
    fn negative_activity_is_detected() {
        let inst = two_agent_instance();
        let x = Solution::new(vec![-0.5, 0.0]);
        let report = inst.feasibility(&x, 1e-9).unwrap();
        assert_eq!(report.negative_agents.len(), 1);
        assert!(!report.is_feasible());
        assert!((report.worst_negativity - 0.5).abs() < 1e-12);
    }

    #[test]
    fn wrong_solution_length_is_rejected() {
        let inst = two_agent_instance();
        let x = Solution::new(vec![0.0]);
        assert!(matches!(
            inst.objective(&x),
            Err(CoreError::SolutionLengthMismatch { expected: 2, actual: 1 })
        ));
    }

    #[test]
    fn non_finite_activity_is_rejected() {
        let inst = two_agent_instance();
        let x = Solution::new(vec![f64::NAN, 0.0]);
        assert!(matches!(inst.objective(&x), Err(CoreError::NonFiniteActivity { .. })));
    }

    #[test]
    fn restriction_keeps_fully_covered_parties_only() {
        let inst = two_agent_instance();
        let (sub, map) = inst.restrict_to_agents(&[agent(0)]);
        assert_eq!(sub.num_agents(), 1);
        assert_eq!(map, vec![agent(0)]);
        // The shared resource survives (restricted), party k1 (only agent 1) is dropped.
        assert_eq!(sub.num_resources(), 1);
        assert_eq!(sub.num_parties(), 1);
        assert_eq!(sub.consumption(resource(0), agent(0)), 1.0);
        assert_eq!(sub.benefit(party(0), agent(0)), 1.0);
    }

    #[test]
    fn restriction_preserves_feasibility_direction() {
        // A solution feasible in the full instance stays feasible in the
        // restriction (resources only lose terms).
        let inst = two_agent_instance();
        let x_full = Solution::new(vec![0.5, 0.25]);
        let (sub, map) = inst.restrict_to_agents(&[agent(1)]);
        let x_sub = Solution::new(map.iter().map(|v| x_full.activity(*v)).collect());
        assert!(sub.is_feasible(&x_sub, 1e-9));
    }

    #[test]
    fn zero_solution_objective_is_zero() {
        let inst = two_agent_instance();
        let x = Solution::zeros(2);
        assert_eq!(inst.objective(&x).unwrap(), 0.0);
        assert!(inst.is_feasible(&x, 0.0));
    }

    #[test]
    fn sparse_entry_counts() {
        let inst = two_agent_instance();
        assert_eq!(inst.num_consumption_entries(), 2);
        assert_eq!(inst.num_benefit_entries(), 2);
    }
}
