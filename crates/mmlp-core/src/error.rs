//! Error types shared by the core crate and its consumers.

use crate::ids::{AgentId, PartyId, ResourceId};
use std::fmt;

/// Errors raised while *constructing* a max-min LP instance.
///
/// The paper assumes every instance is non-degenerate: coefficients are
/// non-negative and the support sets `I_v`, `V_i` and `V_k` are non-empty.
/// The [`InstanceBuilder`](crate::InstanceBuilder) enforces those assumptions
/// and reports violations with this type.
#[derive(Debug, Clone, PartialEq)]
pub enum ValidationError {
    /// A consumption coefficient `a_iv` was negative or non-finite.
    InvalidConsumption {
        /// Resource of the offending coefficient.
        resource: ResourceId,
        /// Agent of the offending coefficient.
        agent: AgentId,
        /// The offending value.
        value: f64,
    },
    /// A benefit coefficient `c_kv` was negative or non-finite.
    InvalidBenefit {
        /// Party of the offending coefficient.
        party: PartyId,
        /// Agent of the offending coefficient.
        agent: AgentId,
        /// The offending value.
        value: f64,
    },
    /// A resource `i` has an empty support set `V_i` (no agent consumes it).
    EmptyResourceSupport(ResourceId),
    /// A party `k` has an empty support set `V_k` (no agent benefits it).
    EmptyPartySupport(PartyId),
    /// An agent `v` has an empty support set `I_v` (it consumes no resource),
    /// which would make `x_v` unbounded.
    EmptyAgentResourceSupport(AgentId),
    /// An agent, resource or party identifier referenced a slot that was never
    /// declared.
    UnknownId(String),
    /// The same `(resource, agent)` or `(party, agent)` pair received two
    /// different coefficients.
    DuplicateCoefficient(String),
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::InvalidConsumption { resource, agent, value } => write!(
                f,
                "consumption coefficient a[{resource},{agent}] = {value} must be finite and non-negative"
            ),
            ValidationError::InvalidBenefit { party, agent, value } => write!(
                f,
                "benefit coefficient c[{party},{agent}] = {value} must be finite and non-negative"
            ),
            ValidationError::EmptyResourceSupport(i) => {
                write!(f, "resource {i} has empty support set V_i")
            }
            ValidationError::EmptyPartySupport(k) => {
                write!(f, "party {k} has empty support set V_k")
            }
            ValidationError::EmptyAgentResourceSupport(v) => write!(
                f,
                "agent {v} consumes no resource (I_v is empty), so x_{v} would be unbounded"
            ),
            ValidationError::UnknownId(what) => write!(f, "unknown identifier: {what}"),
            ValidationError::DuplicateCoefficient(what) => {
                write!(f, "duplicate coefficient: {what}")
            }
        }
    }
}

impl std::error::Error for ValidationError {}

/// Errors raised when *using* an already-constructed instance.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A solution vector did not have one entry per agent.
    SolutionLengthMismatch {
        /// Number of agents in the instance.
        expected: usize,
        /// Number of entries in the solution.
        actual: usize,
    },
    /// A solution entry was non-finite (NaN or infinite).
    NonFiniteActivity {
        /// The agent whose activity is non-finite.
        agent: AgentId,
        /// The offending value.
        value: f64,
    },
    /// The instance has no beneficiary parties, so the objective
    /// `min_k Σ_v c_kv x_v` is undefined.
    NoParties,
    /// Construction-time validation failed.
    Validation(ValidationError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::SolutionLengthMismatch { expected, actual } => {
                write!(f, "solution has {actual} entries but the instance has {expected} agents")
            }
            CoreError::NonFiniteActivity { agent, value } => {
                write!(f, "activity of agent {agent} is not finite: {value}")
            }
            CoreError::NoParties => {
                write!(f, "instance has no beneficiary parties; objective is undefined")
            }
            CoreError::Validation(e) => write!(f, "invalid instance: {e}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Validation(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ValidationError> for CoreError {
    fn from(e: ValidationError) -> Self {
        CoreError::Validation(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{agent, party, resource};

    #[test]
    fn display_messages_mention_offending_ids() {
        let e = ValidationError::InvalidConsumption {
            resource: resource(2),
            agent: agent(5),
            value: -1.0,
        };
        let msg = e.to_string();
        assert!(msg.contains("i2"));
        assert!(msg.contains("v5"));
        assert!(msg.contains("-1"));

        let e = ValidationError::EmptyPartySupport(party(3));
        assert!(e.to_string().contains("k3"));
    }

    #[test]
    fn core_error_wraps_validation_error() {
        let inner = ValidationError::EmptyResourceSupport(resource(0));
        let outer: CoreError = inner.clone().into();
        assert_eq!(outer, CoreError::Validation(inner));
        assert!(outer.to_string().contains("invalid instance"));
    }

    #[test]
    fn solution_mismatch_message() {
        let e = CoreError::SolutionLengthMismatch { expected: 4, actual: 2 };
        let msg = e.to_string();
        assert!(msg.contains('4'));
        assert!(msg.contains('2'));
    }

    #[test]
    fn error_source_chain() {
        use std::error::Error;
        let inner = ValidationError::EmptyResourceSupport(resource(0));
        let outer = CoreError::Validation(inner);
        assert!(outer.source().is_some());
        assert!(CoreError::NoParties.source().is_none());
    }
}
