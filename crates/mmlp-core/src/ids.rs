//! Strongly typed identifiers for the three index sets of a max-min LP.
//!
//! Agents, resources and beneficiary parties are stored in dense arrays, so
//! the identifiers are thin wrappers around array indices.  Newtypes keep the
//! three spaces from being mixed up accidentally (`I ∩ K = ∅` in the paper,
//! and agents live in a different space entirely).

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $tag:literal) => {
        $(#[$doc])*
        #[derive(
            Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
        )]
        pub struct $name(pub u32);

        impl $name {
            /// Creates an identifier from a dense array index.
            #[inline]
            pub fn new(index: usize) -> Self {
                debug_assert!(index <= u32::MAX as usize, "index overflows u32 id space");
                Self(index as u32)
            }

            /// Returns the dense array index this identifier refers to.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($tag, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($tag, "{}"), self.0)
            }
        }

        impl From<usize> for $name {
            fn from(index: usize) -> Self {
                Self::new(index)
            }
        }

        impl From<$name> for usize {
            fn from(id: $name) -> usize {
                id.index()
            }
        }
    };
}

define_id!(
    /// Identifier of an agent `v ∈ V`.  Agent `v` controls the variable `x_v`.
    AgentId,
    "v"
);

define_id!(
    /// Identifier of a resource (packing constraint) `i ∈ I`.
    ResourceId,
    "i"
);

define_id!(
    /// Identifier of a beneficiary party `k ∈ K`.
    PartyId,
    "k"
);

/// Convenience constructor for an [`AgentId`].
#[inline]
pub fn agent(index: usize) -> AgentId {
    AgentId::new(index)
}

/// Convenience constructor for a [`ResourceId`].
#[inline]
pub fn resource(index: usize) -> ResourceId {
    ResourceId::new(index)
}

/// Convenience constructor for a [`PartyId`].
#[inline]
pub fn party(index: usize) -> PartyId {
    PartyId::new(index)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_index() {
        for idx in [0usize, 1, 7, 1024, u32::MAX as usize] {
            assert_eq!(AgentId::new(idx).index(), idx);
            assert_eq!(ResourceId::new(idx).index(), idx);
            assert_eq!(PartyId::new(idx).index(), idx);
        }
    }

    #[test]
    fn display_prefixes_distinguish_spaces() {
        assert_eq!(agent(3).to_string(), "v3");
        assert_eq!(resource(3).to_string(), "i3");
        assert_eq!(party(3).to_string(), "k3");
    }

    #[test]
    fn ordering_follows_indices() {
        assert!(agent(1) < agent(2));
        assert!(resource(0) < resource(10));
        assert!(party(5) > party(4));
    }

    #[test]
    fn from_usize_conversions() {
        let a: AgentId = 42usize.into();
        assert_eq!(usize::from(a), 42);
        let r: ResourceId = 7usize.into();
        assert_eq!(usize::from(r), 7);
        let k: PartyId = 9usize.into();
        assert_eq!(usize::from(k), 9);
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(AgentId::default(), agent(0));
        assert_eq!(ResourceId::default(), resource(0));
        assert_eq!(PartyId::default(), party(0));
    }

    #[test]
    fn debug_matches_display() {
        assert_eq!(format!("{:?}", agent(11)), "v11");
        assert_eq!(format!("{:?}", resource(11)), "i11");
        assert_eq!(format!("{:?}", party(11)), "k11");
    }
}
