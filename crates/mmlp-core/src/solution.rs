//! Solution vectors and their evaluation.

use crate::ids::{AgentId, ResourceId};
use serde::{Deserialize, Serialize};

/// A candidate solution: one activity value `x_v ≥ 0` per agent.
///
/// A `Solution` is just a dense vector indexed by [`AgentId`]; it carries no
/// reference to the instance, so the same vector can be checked against
/// several (compatible) instances — this is exactly what the lower-bound
/// argument of Section 4 does when it re-interprets the choices made on the
/// instance `S` as a solution of the sub-instance `S'`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Solution {
    activities: Vec<f64>,
}

impl Solution {
    /// Wraps a dense activity vector.
    pub fn new(activities: Vec<f64>) -> Self {
        Self { activities }
    }

    /// The all-zero solution for `n` agents (always feasible).
    pub fn zeros(n: usize) -> Self {
        Self { activities: vec![0.0; n] }
    }

    /// The constant solution `x_v = value` for `n` agents.
    pub fn constant(n: usize, value: f64) -> Self {
        Self { activities: vec![value; n] }
    }

    /// Number of agents covered by this solution.
    pub fn len(&self) -> usize {
        self.activities.len()
    }

    /// `true` if the solution covers no agents.
    pub fn is_empty(&self) -> bool {
        self.activities.is_empty()
    }

    /// Activity of agent `v`.
    #[inline]
    pub fn activity(&self, v: AgentId) -> f64 {
        self.activities[v.index()]
    }

    /// Sets the activity of agent `v`.
    #[inline]
    pub fn set_activity(&mut self, v: AgentId, value: f64) {
        self.activities[v.index()] = value;
    }

    /// Read-only view of the underlying vector.
    pub fn activities(&self) -> &[f64] {
        &self.activities
    }

    /// Consumes the solution, returning the underlying vector.
    pub fn into_vec(self) -> Vec<f64> {
        self.activities
    }

    /// Returns a new solution with every activity multiplied by `factor`.
    ///
    /// Scaling by a factor in `[0, 1]` preserves feasibility because all
    /// constraint coefficients are non-negative.
    pub fn scaled(&self, factor: f64) -> Self {
        Self { activities: self.activities.iter().map(|x| x * factor).collect() }
    }

    /// Sum of all activities (useful for diagnostics).
    pub fn total_activity(&self) -> f64 {
        self.activities.iter().sum()
    }

    /// Largest single activity.
    pub fn max_activity(&self) -> f64 {
        self.activities.iter().copied().fold(0.0, f64::max)
    }
}

impl From<Vec<f64>> for Solution {
    fn from(activities: Vec<f64>) -> Self {
        Self::new(activities)
    }
}

impl std::ops::Index<AgentId> for Solution {
    type Output = f64;
    fn index(&self, v: AgentId) -> &f64 {
        &self.activities[v.index()]
    }
}

/// The result of fully evaluating a solution against an instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Evaluation {
    /// The max-min objective `ω = min_k Σ_v c_kv x_v`.
    pub objective: f64,
    /// Benefit received by each party, indexed by `PartyId`.
    pub party_benefits: Vec<f64>,
    /// Usage of each resource, indexed by `ResourceId`.
    pub resource_usages: Vec<f64>,
    /// The largest resource usage (≤ 1 + tol for feasible solutions).
    pub max_resource_usage: f64,
    /// The smallest activity (≥ −tol for feasible solutions).
    pub min_activity: f64,
}

impl Evaluation {
    /// Identifier of a party receiving the minimum benefit (the bottleneck of
    /// the max-min objective), if any party exists.
    ///
    /// Uses the IEEE-754 total order, so a NaN benefit (an `Evaluation`
    /// assembled by hand or from a diverged computation) picks a
    /// deterministic bottleneck instead of panicking; NaN sorts above every
    /// finite benefit and is therefore never selected over one.
    pub fn bottleneck_party(&self) -> Option<usize> {
        self.party_benefits
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .map(|(idx, _)| idx)
    }

    /// Identifier of a resource with the maximum usage, if any resource exists.
    ///
    /// Like [`bottleneck_party`](Self::bottleneck_party), total-ordered: a
    /// NaN usage never panics, and `max_by` under `total_cmp` prefers the
    /// NaN (it sorts above +∞), deterministically flagging the diverged
    /// entry as the tightest.
    pub fn tightest_resource(&self) -> Option<usize> {
        self.resource_usages
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(idx, _)| idx)
    }
}

/// A detailed feasibility report produced by
/// [`MaxMinInstance::feasibility`](crate::MaxMinInstance::feasibility).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeasibilityReport {
    /// The absolute tolerance the check was performed with.
    pub tolerance: f64,
    /// Resources whose usage exceeds `1 + tolerance`, with their usages.
    pub violated_resources: Vec<(ResourceId, f64)>,
    /// Agents whose activity is below `-tolerance`, with their activities.
    pub negative_agents: Vec<(AgentId, f64)>,
    /// `max(0, max_i Σ_v a_iv x_v − 1)`.
    pub worst_capacity_violation: f64,
    /// `max(0, max_v −x_v)`.
    pub worst_negativity: f64,
}

impl FeasibilityReport {
    /// `true` iff no constraint is violated beyond the tolerance.
    pub fn is_feasible(&self) -> bool {
        self.violated_resources.is_empty() && self.negative_agents.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::agent;

    #[test]
    fn construction_and_access() {
        let mut x = Solution::zeros(3);
        assert_eq!(x.len(), 3);
        assert!(!x.is_empty());
        x.set_activity(agent(1), 2.5);
        assert_eq!(x.activity(agent(1)), 2.5);
        assert_eq!(x[agent(1)], 2.5);
        assert_eq!(x.activities(), &[0.0, 2.5, 0.0]);
        assert_eq!(x.total_activity(), 2.5);
        assert_eq!(x.max_activity(), 2.5);
    }

    #[test]
    fn constant_and_from_vec() {
        let x = Solution::constant(4, 0.25);
        assert_eq!(x.activities(), &[0.25; 4]);
        let y: Solution = vec![1.0, 2.0].into();
        assert_eq!(y.len(), 2);
        assert_eq!(y.into_vec(), vec![1.0, 2.0]);
    }

    #[test]
    fn scaling() {
        let x = Solution::new(vec![1.0, 2.0, 4.0]);
        let y = x.scaled(0.5);
        assert_eq!(y.activities(), &[0.5, 1.0, 2.0]);
        // scaling does not mutate the original
        assert_eq!(x.activities(), &[1.0, 2.0, 4.0]);
    }

    #[test]
    fn empty_solution() {
        let x = Solution::zeros(0);
        assert!(x.is_empty());
        assert_eq!(x.total_activity(), 0.0);
        assert_eq!(x.max_activity(), 0.0);
    }

    #[test]
    fn evaluation_bottlenecks() {
        let eval = Evaluation {
            objective: 1.0,
            party_benefits: vec![3.0, 1.0, 2.0],
            resource_usages: vec![0.5, 0.9, 0.2],
            max_resource_usage: 0.9,
            min_activity: 0.0,
        };
        assert_eq!(eval.bottleneck_party(), Some(1));
        assert_eq!(eval.tightest_resource(), Some(1));
    }

    #[test]
    fn evaluation_bottlenecks_tolerate_non_finite_entries() {
        // Regression: the comparators used `partial_cmp(..).expect(..)` and
        // panicked on any NaN activity that slipped into an evaluation.
        let eval = Evaluation {
            objective: f64::NAN,
            party_benefits: vec![2.0, f64::NAN, 1.0],
            resource_usages: vec![0.3, f64::NAN, 0.7],
            max_resource_usage: f64::NAN,
            min_activity: 0.0,
        };
        // min under the total order never prefers NaN over a finite benefit…
        assert_eq!(eval.bottleneck_party(), Some(2));
        // …and max deterministically flags the NaN usage as tightest.
        assert_eq!(eval.tightest_resource(), Some(1));
        // Infinities order normally.
        let eval = Evaluation {
            objective: 0.0,
            party_benefits: vec![f64::INFINITY, 0.5],
            resource_usages: vec![f64::NEG_INFINITY, 0.5],
            max_resource_usage: 0.5,
            min_activity: 0.0,
        };
        assert_eq!(eval.bottleneck_party(), Some(1));
        assert_eq!(eval.tightest_resource(), Some(1));
    }

    #[test]
    fn evaluation_bottlenecks_empty() {
        let eval = Evaluation {
            objective: f64::INFINITY,
            party_benefits: vec![],
            resource_usages: vec![],
            max_resource_usage: 0.0,
            min_activity: 0.0,
        };
        assert_eq!(eval.bottleneck_party(), None);
        assert_eq!(eval.tightest_resource(), None);
    }

    #[test]
    fn feasibility_report_flags() {
        let ok = FeasibilityReport {
            tolerance: 1e-9,
            violated_resources: vec![],
            negative_agents: vec![],
            worst_capacity_violation: 0.0,
            worst_negativity: 0.0,
        };
        assert!(ok.is_feasible());
        let bad =
            FeasibilityReport { violated_resources: vec![(ResourceId::new(0), 1.5)], ..ok.clone() };
        assert!(!bad.is_feasible());
    }
}
