//! Canonical forms of max-min LP instances.
//!
//! The batched local-LP engine (in `mmlp-algorithms`) solves one local LP per
//! agent, and on regular instances most of those LPs are *structurally
//! identical*: they differ only in how their agents, resources and parties
//! happen to be numbered.  This module computes a **canonical form** — a
//! relabelling of the instance that is invariant under any permutation of
//! agent identifiers (and of the resource/party listing order) — so that
//! structurally identical LPs map to the same [`CanonicalKey`] and are
//! detected by a hash lookup.
//!
//! The algorithm is the classic individualisation–refinement scheme used for
//! graph canonisation, specialised to the bipartite agent/constraint
//! structure of a max-min LP:
//!
//! 1. **Colour refinement.**  Agents start with one shared colour and are
//!    repeatedly split by the signature "(own colour, multiset of incident
//!    resource shapes, multiset of incident party shapes)", where a
//!    resource/party shape lists the member colours together with the exact
//!    coefficient bits.  This is the Weisfeiler–Leman refinement on the
//!    coefficient-weighted incidence structure.
//! 2. **Individualisation.**  If refinement stabilises with a non-singleton
//!    colour class, each member of the first such class is tentatively given
//!    a fresh colour, refinement is re-run, and the recursion keeps the
//!    lexicographically smallest complete encoding.  This makes the result a
//!    true canonical form (isomorphic instances produce identical keys), not
//!    just an invariant.
//!
//! Local LPs have constant-bounded size in the paper's setting, so the
//! worst-case exponential branching of step 2 is never a concern in
//! practice; highly symmetric balls simply explore one branch per
//! automorphism-equivalent choice.

use crate::ids::AgentId;
use crate::instance::{Agent, MaxMinInstance, Party, Resource};

/// Sentinel opening each resource section inside flat LP encodings (both
/// the canonical encoding here and the engine's presentation keys).
/// Coefficient bit patterns can collide with small integers, so the
/// sentinels are fixed bit patterns that valid (positive, finite)
/// coefficients and indices never produce.
pub const SEP_RESOURCE: u64 = u64::MAX;
/// Sentinel opening each party section inside flat LP encodings.
pub const SEP_PARTY: u64 = u64::MAX - 1;
/// Sentinel opening each `(agent, coefficient)` entry inside an encoding.
pub const SEP_ENTRY: u64 = u64::MAX - 2;

/// A hashable, order-independent fingerprint of a max-min LP instance.
///
/// Two instances have equal keys **iff** they are isomorphic: there is a
/// bijection of agents (and an induced matching of resources and parties)
/// that maps every coefficient onto an exactly equal coefficient.  The key
/// is the flat encoding of the canonically relabelled instance.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CanonicalKey(Vec<u64>);

impl CanonicalKey {
    /// The raw encoding words (exposed for diagnostics and hashing).
    pub fn as_words(&self) -> &[u64] {
        &self.0
    }

    /// Rebuilds a key from raw encoding words, as produced by
    /// [`as_words`](CanonicalKey::as_words).
    ///
    /// This exists for transport layers that ship canonical forms across a
    /// byte boundary and must reconstruct the exact key.  Words that did not
    /// come from a real canonical form make a key that matches no instance —
    /// harmless for lookups, but do not fabricate keys expecting the
    /// "equal iff isomorphic" guarantee to hold for them.
    pub fn from_words(words: Vec<u64>) -> Self {
        CanonicalKey(words)
    }
}

/// The canonical form of an instance: its key, the relabelling that produced
/// it, and the relabelled instance itself (ready to hand to a solver).
#[derive(Debug, Clone, PartialEq)]
pub struct CanonicalForm {
    /// The canonical fingerprint.
    pub key: CanonicalKey,
    /// `labelling[v]` is the canonical index of original agent `v`.
    pub labelling: Vec<usize>,
    /// The instance with agents renumbered by `labelling` and the resource /
    /// party lists sorted into canonical order.
    ///
    /// Isomorphic inputs produce **bit-identical** canonical instances, so a
    /// deterministic solver run on this instance returns bit-identical
    /// results for every member of an isomorphism class.
    pub instance: MaxMinInstance,
}

impl CanonicalForm {
    /// Translates a solution of the canonical instance back to the original
    /// agent order: entry `v` of the result is the canonical solution's value
    /// for original agent `v`.
    pub fn unpermute(&self, canonical_values: &[f64]) -> Vec<f64> {
        assert_eq!(canonical_values.len(), self.labelling.len());
        self.labelling.iter().map(|&c| canonical_values[c]).collect()
    }
}

/// Computes the canonical form of an instance.
///
/// See the module docs for the algorithm.  The instance may have any shape
/// accepted by [`MaxMinInstance`] (including zero parties, as happens for
/// ball LPs whose ball contains no complete party support).
pub fn canonical_form(instance: &MaxMinInstance) -> CanonicalForm {
    let n = instance.num_agents();
    if n == 0 {
        return CanonicalForm {
            key: CanonicalKey(vec![0, 0, 0]),
            labelling: Vec::new(),
            instance: instance.clone(),
        };
    }
    let ctx = Context::new(instance);
    let mut colors = vec![0u32; n];
    ctx.refine(&mut colors);
    let mut best: Option<(Vec<u64>, Vec<usize>)> = None;
    ctx.search(colors, &mut best);
    let (encoding, labelling) = best.expect("search always yields at least one labelling");
    let canonical = ctx.relabel(&labelling);
    CanonicalForm { key: CanonicalKey(encoding), labelling, instance: canonical }
}

/// Convenience wrapper returning only the key.
pub fn canonical_key(instance: &MaxMinInstance) -> CanonicalKey {
    canonical_form(instance).key
}

/// The quasi-stable (lifted) canonical form of an instance: the exact
/// canonical form of the **weight-quantised** instance together with the
/// relative slack the quantisation actually incurred.
///
/// Two instances fall into the same quasi-class iff their quantised
/// instances are isomorphic — the quantisation snaps every coefficient onto
/// a shared geometric grid, so coefficients that differ by a relative factor
/// below the grid step merge, while the incidence structure is preserved
/// exactly.  This is the colour-lifting of quasi-stable partition schemes,
/// realised as a preprocessing step so the exact
/// individualisation–refinement machinery (and everything keyed by
/// [`CanonicalKey`]) is reused unchanged.
#[derive(Debug, Clone, PartialEq)]
pub struct QuasiCanonicalForm {
    /// The exact canonical form of the quantised instance.  Its
    /// [`instance`](CanonicalForm::instance) is the quantised LP that a
    /// solver should run; its [`key`](CanonicalForm::key) identifies the
    /// quasi-class; its [`labelling`](CanonicalForm::labelling) is a valid
    /// agent bijection for the *original* instance too (quantisation never
    /// changes the incidence structure).
    pub form: CanonicalForm,
    /// The largest relative rounding applied to any coefficient:
    /// `max_w (w / q(w)) − 1` over all coefficients `w` of the input, where
    /// `q(w) ≤ w` is the quantised value.  Exactly `0.0` when `epsilon = 0`
    /// (the identity quantisation); at most `epsilon` up to floating-point
    /// rounding of the grid itself otherwise.  The slack is *measured*, not
    /// assumed — certification downstream uses this value, so grid-edge
    /// float effects can never make a certificate unsound.
    pub slack: f64,
}

/// Snaps a coefficient onto the geometric grid `(1+ε)^b`, returning the
/// largest grid point `q` with `q ≤ w` (so `w/q − 1 ∈ [0, ε]` up to
/// floating-point rounding of the grid itself).
///
/// `epsilon ≤ 0` is the identity.  `w` must be positive and finite (as every
/// validated instance coefficient is).  The result depends only on the
/// bucket index, so coefficients in the same bucket share the exact same
/// representative bit pattern — which is what lets the exact canonicaliser
/// merge them.
pub fn quantise_weight(w: f64, epsilon: f64) -> f64 {
    if epsilon <= 0.0 {
        return w;
    }
    debug_assert!(w.is_finite() && w > 0.0, "coefficients are positive and finite");
    let base = 1.0 + epsilon;
    let mut b = (w.ln() / base.ln()).floor() as i32;
    // The floating-point floor above can land one bucket off near grid
    // edges; the guards restore the defining property q ≤ w < q·base.
    // Only q ≤ w (and q > 0) is load-bearing for certification — the
    // incurred slack is measured by the caller, never assumed.
    while base.powi(b) > w {
        b -= 1;
    }
    while base.powi(b + 1) <= w {
        b += 1;
    }
    base.powi(b)
}

/// Computes the quasi-stable canonical form with slack tolerance `epsilon`.
///
/// With `epsilon = 0.0` this **is** [`canonical_form`] — same key, same
/// labelling, bit-identical canonical instance, slack exactly `0.0`.  With
/// `epsilon > 0`, every coefficient is first snapped down onto the geometric
/// grid `(1+ε)^b` and the exact canonical form of the quantised instance is
/// returned together with the measured slack (see [`QuasiCanonicalForm`]).
pub fn quasi_canonical_form(instance: &MaxMinInstance, epsilon: f64) -> QuasiCanonicalForm {
    if epsilon <= 0.0 {
        return QuasiCanonicalForm { form: canonical_form(instance), slack: 0.0 };
    }
    let (quantised, slack) = quantise_instance(instance, epsilon);
    QuasiCanonicalForm { form: canonical_form(&quantised), slack }
}

/// Quantises every coefficient of `instance` onto the geometric grid and
/// returns the quantised instance plus the largest relative rounding
/// incurred.  Incidence structure (which agent sits in which resource/party,
/// and in what stored order) is preserved exactly.
fn quantise_instance(instance: &MaxMinInstance, epsilon: f64) -> (MaxMinInstance, f64) {
    let mut slack = 0.0f64;
    let mut q = |w: f64| -> f64 {
        let snapped = quantise_weight(w, epsilon);
        slack = slack.max(w / snapped - 1.0);
        snapped
    };
    let agents = instance
        .agents
        .iter()
        .map(|a| Agent {
            resources: a.resources.iter().map(|&(i, w)| (i, q(w))).collect(),
            parties: a.parties.iter().map(|&(k, w)| (k, q(w))).collect(),
        })
        .collect();
    // The same coefficient is stored in both orientations; `quantise_weight`
    // is a pure function of the bits, so the mirrored copies stay equal.
    let resources = instance
        .resources
        .iter()
        .map(|r| Resource { agents: r.agents.iter().map(|&(v, w)| (v, q(w))).collect() })
        .collect();
    let parties = instance
        .parties
        .iter()
        .map(|p| Party { agents: p.agents.iter().map(|&(v, w)| (v, q(w))).collect() })
        .collect();
    (MaxMinInstance { agents, resources, parties }, slack)
}

/// Immutable view of the instance used throughout refinement and search.
struct Context<'a> {
    instance: &'a MaxMinInstance,
    num_agents: usize,
    /// Twin-equivalence class of each agent: two agents are *twins* when
    /// swapping them (and touching nothing else) is an automorphism of the
    /// instance.  The individualisation search only needs to branch on one
    /// member per twin class — the branches of the other members are images
    /// of that one under the transposition, so they reach the same minimal
    /// encoding.  This keeps instances with many interchangeable agents
    /// (e.g. identical agents on private resources) linear instead of
    /// factorial.
    twin_class: Vec<usize>,
}

impl<'a> Context<'a> {
    fn new(instance: &'a MaxMinInstance) -> Self {
        let twin_class = twin_classes(instance);
        Self { instance, num_agents: instance.num_agents(), twin_class }
    }

    /// One agent's refinement signature under the current colouring.
    ///
    /// The signature is a flat word list: own colour, then the sorted
    /// multiset of incident resource shapes, then the sorted multiset of
    /// incident party shapes.  A shape records the agent's own coefficient
    /// and the full `(colour, coefficient)` membership of the hyperedge.
    fn signature(&self, v: usize, colors: &[u32]) -> Vec<u64> {
        let agent = &self.instance.agents[v];
        let mut sig = vec![colors[v] as u64];
        let mut shapes: Vec<Vec<u64>> = agent
            .resources
            .iter()
            .map(|(i, a)| {
                let mut shape = vec![a.to_bits()];
                let mut members: Vec<(u64, u64)> = self.instance.resources[i.index()]
                    .agents
                    .iter()
                    .map(|(u, b)| (colors[u.index()] as u64, b.to_bits()))
                    .collect();
                members.sort_unstable();
                for (c, b) in members {
                    shape.push(c);
                    shape.push(b);
                }
                shape
            })
            .collect();
        shapes.sort_unstable();
        for shape in &shapes {
            sig.push(SEP_RESOURCE);
            sig.extend_from_slice(shape);
        }
        let mut shapes: Vec<Vec<u64>> = agent
            .parties
            .iter()
            .map(|(k, c)| {
                let mut shape = vec![c.to_bits()];
                let mut members: Vec<(u64, u64)> = self.instance.parties[k.index()]
                    .agents
                    .iter()
                    .map(|(u, b)| (colors[u.index()] as u64, b.to_bits()))
                    .collect();
                members.sort_unstable();
                for (col, b) in members {
                    shape.push(col);
                    shape.push(b);
                }
                shape
            })
            .collect();
        shapes.sort_unstable();
        for shape in &shapes {
            sig.push(SEP_PARTY);
            sig.extend_from_slice(shape);
        }
        sig
    }

    /// Runs colour refinement to a fixed point.  Colours are canonical ranks
    /// (0-based, ordered by signature), so the result is invariant under any
    /// permutation of the input agent ids.
    fn refine(&self, colors: &mut [u32]) {
        let n = self.num_agents;
        let mut num_colors = colors.iter().collect::<std::collections::BTreeSet<_>>().len();
        loop {
            let sigs: Vec<Vec<u64>> = (0..n).map(|v| self.signature(v, colors)).collect();
            let mut order: Vec<usize> = (0..n).collect();
            order.sort_by(|&a, &b| sigs[a].cmp(&sigs[b]));
            let mut next = 0u32;
            let mut previous: Option<&[u64]> = None;
            for &v in &order {
                if let Some(p) = previous {
                    if p != sigs[v].as_slice() {
                        next += 1;
                    }
                }
                colors[v] = next;
                previous = Some(&sigs[v]);
            }
            let new_num = next as usize + 1;
            if new_num == num_colors {
                return;
            }
            num_colors = new_num;
        }
    }

    /// Individualisation search: explores every member of the first
    /// non-singleton colour class and keeps the lexicographically smallest
    /// complete encoding.
    fn search(&self, colors: Vec<u32>, best: &mut Option<(Vec<u64>, Vec<usize>)>) {
        let n = self.num_agents;
        // Count class sizes to find the first non-singleton class.
        let mut class_size = vec![0usize; n];
        for &c in &colors {
            class_size[c as usize] += 1;
        }
        let target = class_size.iter().position(|&s| s > 1);
        let Some(target) = target else {
            // Discrete colouring: colours are exactly the canonical indices.
            let labelling: Vec<usize> = colors.iter().map(|&c| c as usize).collect();
            let encoding = self.encode(&labelling);
            let improves = match best {
                None => true,
                Some((incumbent, _)) => encoding < *incumbent,
            };
            if improves {
                *best = Some((encoding, labelling));
            }
            return;
        };
        let mut branched_twin_classes = std::collections::BTreeSet::new();
        for v in 0..n {
            if colors[v] as usize != target {
                continue;
            }
            // Twins reach the same minimal encoding; branch once per class.
            if !branched_twin_classes.insert(self.twin_class[v]) {
                continue;
            }
            let mut branch = colors.clone();
            // Give `v` a fresh colour; refinement re-ranks everything.
            branch[v] = n as u32;
            self.refine(&mut branch);
            self.search(branch, best);
        }
    }

    /// Flat encoding of the instance under a discrete labelling.
    fn encode(&self, labelling: &[usize]) -> Vec<u64> {
        let inst = self.instance;
        let mut encoding =
            vec![inst.num_agents() as u64, inst.num_resources() as u64, inst.num_parties() as u64];
        let mut resources = self.relabelled_edges(&inst.resources, labelling, Resource::members);
        let mut parties = self.relabelled_edges(&inst.parties, labelling, Party::members);
        for (sep, edges) in [(SEP_RESOURCE, &mut resources), (SEP_PARTY, &mut parties)] {
            edges.sort_unstable();
            for edge in edges.iter() {
                encoding.push(sep);
                for &(v, bits) in edge {
                    encoding.push(SEP_ENTRY);
                    encoding.push(v as u64);
                    encoding.push(bits);
                }
            }
        }
        encoding
    }

    /// The hyperedges of one kind, relabelled and sorted member-wise.
    fn relabelled_edges<E>(
        &self,
        edges: &[E],
        labelling: &[usize],
        members: impl Fn(&E) -> &[(AgentId, f64)],
    ) -> Vec<Vec<(usize, u64)>> {
        edges
            .iter()
            .map(|e| {
                let mut entries: Vec<(usize, u64)> = members(e)
                    .iter()
                    .map(|(v, c)| (labelling[v.index()], c.to_bits()))
                    .collect();
                entries.sort_unstable();
                entries
            })
            .collect()
    }

    /// Builds the canonically relabelled instance for a discrete labelling.
    fn relabel(&self, labelling: &[usize]) -> MaxMinInstance {
        let inst = self.instance;
        let mut resources = self.relabelled_edges(&inst.resources, labelling, Resource::members);
        resources.sort_unstable();
        let mut parties = self.relabelled_edges(&inst.parties, labelling, Party::members);
        parties.sort_unstable();
        assemble(self.num_agents, &resources, &parties)
    }
}

/// Computes the twin-equivalence classes of the agents: `u` and `v` are
/// twins iff the transposition `(u v)` is an automorphism of the instance,
/// i.e. it maps the resource shape multiset and the party shape multiset
/// each onto themselves.
fn twin_classes(instance: &MaxMinInstance) -> Vec<usize> {
    use std::collections::HashMap;
    let n = instance.num_agents();
    type Shape = Vec<(usize, u64)>;
    let shape_of = |entries: &[(AgentId, f64)]| -> Shape {
        let mut s: Shape = entries.iter().map(|(v, c)| (v.index(), c.to_bits())).collect();
        s.sort_unstable();
        s
    };
    let resource_shapes: Vec<Shape> =
        instance.resources.iter().map(|r| shape_of(&r.agents)).collect();
    let party_shapes: Vec<Shape> = instance.parties.iter().map(|p| shape_of(&p.agents)).collect();
    let count_shapes = |shapes: &[Shape]| -> HashMap<Shape, usize> {
        let mut counts = HashMap::new();
        for s in shapes {
            *counts.entry(s.clone()).or_insert(0) += 1;
        }
        counts
    };
    let resource_counts = count_shapes(&resource_shapes);
    let party_counts = count_shapes(&party_shapes);

    let swap = |shape: &Shape, u: usize, v: usize| -> Shape {
        let mut out: Shape = shape
            .iter()
            .map(|&(w, c)| {
                (
                    if w == u {
                        v
                    } else if w == v {
                        u
                    } else {
                        w
                    },
                    c,
                )
            })
            .collect();
        out.sort_unstable();
        out
    };
    // A cheap pre-filter: twins must have identical coefficient profiles.
    let profile = |v: usize| -> (Vec<u64>, Vec<u64>) {
        let agent = &instance.agents[v];
        let mut r: Vec<u64> = agent.resources.iter().map(|(_, a)| a.to_bits()).collect();
        r.sort_unstable();
        let mut p: Vec<u64> = agent.parties.iter().map(|(_, c)| c.to_bits()).collect();
        p.sort_unstable();
        (r, p)
    };
    let profiles: Vec<(Vec<u64>, Vec<u64>)> = (0..n).map(profile).collect();

    let are_twins = |u: usize, v: usize| -> bool {
        let check = |shapes: &[Shape],
                     counts: &HashMap<Shape, usize>,
                     edges_u: &[usize],
                     edges_v: &[usize]| {
            let mut touched: Vec<usize> = edges_u.iter().chain(edges_v).copied().collect();
            touched.sort_unstable();
            touched.dedup();
            touched.iter().all(|&e| {
                let swapped = swap(&shapes[e], u, v);
                counts.get(&swapped) == counts.get(&shapes[e])
            })
        };
        let eu: Vec<usize> = instance.agents[u].resources.iter().map(|(i, _)| i.index()).collect();
        let ev: Vec<usize> = instance.agents[v].resources.iter().map(|(i, _)| i.index()).collect();
        if !check(&resource_shapes, &resource_counts, &eu, &ev) {
            return false;
        }
        let eu: Vec<usize> = instance.agents[u].parties.iter().map(|(k, _)| k.index()).collect();
        let ev: Vec<usize> = instance.agents[v].parties.iter().map(|(k, _)| k.index()).collect();
        check(&party_shapes, &party_counts, &eu, &ev)
    };

    // Union-find over agents; twinness is transitive enough for our use
    // (each union is justified by an explicit transposition automorphism,
    // and products of automorphisms are automorphisms).
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    for u in 0..n {
        for v in u + 1..n {
            if profiles[u] != profiles[v] {
                continue;
            }
            let (ru, rv) = (find(&mut parent, u), find(&mut parent, v));
            if ru != rv && are_twins(u, v) {
                parent[rv] = ru;
            }
        }
    }
    let mut dense = vec![usize::MAX; n];
    let mut next = 0;
    (0..n)
        .map(|v| {
            let root = find(&mut parent, v);
            if dense[root] == usize::MAX {
                dense[root] = next;
                next += 1;
            }
            dense[root]
        })
        .collect()
}

/// Assembles a [`MaxMinInstance`] from relabelled, canonically sorted edge
/// lists (entries are `(canonical agent index, coefficient bits)`).
fn assemble(
    num_agents: usize,
    resources: &[Vec<(usize, u64)>],
    parties: &[Vec<(usize, u64)>],
) -> MaxMinInstance {
    let mut agents = vec![Agent::default(); num_agents];
    let mut out_resources = Vec::with_capacity(resources.len());
    for (idx, entries) in resources.iter().enumerate() {
        let i = crate::ids::resource(idx);
        let mut members = Vec::with_capacity(entries.len());
        for &(v, bits) in entries {
            let a = f64::from_bits(bits);
            members.push((AgentId::new(v), a));
            agents[v].resources.push((i, a));
        }
        out_resources.push(Resource { agents: members });
    }
    let mut out_parties = Vec::with_capacity(parties.len());
    for (idx, entries) in parties.iter().enumerate() {
        let k = crate::ids::party(idx);
        let mut members = Vec::with_capacity(entries.len());
        for &(v, bits) in entries {
            let c = f64::from_bits(bits);
            members.push((AgentId::new(v), c));
            agents[v].parties.push((k, c));
        }
        out_parties.push(Party { agents: members });
    }
    MaxMinInstance { agents, resources: out_resources, parties: out_parties }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::InstanceBuilder;

    /// A 4-cycle: agents 0-1-2-3-0, one resource per edge, one party per
    /// agent over its closed neighbourhood.
    fn cycle4() -> MaxMinInstance {
        let mut b = InstanceBuilder::new();
        let v = b.add_agents(4);
        for e in 0..4 {
            let i = b.add_resource();
            b.set_consumption(i, v[e], 1.0);
            b.set_consumption(i, v[(e + 1) % 4], 1.0);
        }
        for a in 0..4 {
            let k = b.add_party();
            b.set_benefit(k, v[a], 1.0);
            b.set_benefit(k, v[(a + 1) % 4], 1.0);
            b.set_benefit(k, v[(a + 3) % 4], 1.0);
        }
        b.build().unwrap()
    }

    #[test]
    fn key_is_invariant_under_agent_permutation() {
        let inst = cycle4();
        let base = canonical_form(&inst);
        for rotation in 1..4 {
            let perm: Vec<usize> = (0..4).map(|v| (v + rotation) % 4).collect();
            let permuted = inst.permute_agents(&perm);
            let form = canonical_form(&permuted);
            assert_eq!(base.key, form.key, "rotation {rotation}");
            assert_eq!(base.instance, form.instance, "rotation {rotation}");
        }
    }

    #[test]
    fn key_distinguishes_different_coefficients() {
        let mut b = InstanceBuilder::new();
        let v = b.add_agents(2);
        let i = b.add_resource();
        b.set_consumption(i, v[0], 1.0);
        b.set_consumption(i, v[1], 1.0);
        let k = b.add_party();
        b.set_benefit(k, v[0], 1.0);
        let symmetric = b.build().unwrap();

        let mut b = InstanceBuilder::new();
        let v = b.add_agents(2);
        let i = b.add_resource();
        b.set_consumption(i, v[0], 1.0);
        b.set_consumption(i, v[1], 2.0);
        let k = b.add_party();
        b.set_benefit(k, v[0], 1.0);
        let skewed = b.build().unwrap();

        assert_ne!(canonical_key(&symmetric), canonical_key(&skewed));
    }

    #[test]
    fn mirror_images_share_a_key() {
        // A path 0-1-2 with benefits 1, 2 on the endpoint parties, and its
        // mirror with the benefits swapped: isomorphic via reversal.
        let build = |left: f64, right: f64| {
            let mut b = InstanceBuilder::new();
            let v = b.add_agents(3);
            for e in 0..2 {
                let i = b.add_resource();
                b.set_consumption(i, v[e], 1.0);
                b.set_consumption(i, v[e + 1], 1.0);
            }
            let k = b.add_party();
            b.set_benefit(k, v[0], left);
            let k = b.add_party();
            b.set_benefit(k, v[2], right);
            b.build().unwrap()
        };
        assert_eq!(canonical_key(&build(1.0, 2.0)), canonical_key(&build(2.0, 1.0)));
        assert_ne!(canonical_key(&build(1.0, 2.0)), canonical_key(&build(1.0, 3.0)));
    }

    #[test]
    fn canonical_instance_is_isomorphic_to_the_input() {
        let inst = cycle4();
        let form = canonical_form(&inst);
        // The canonical instance of the canonical instance is itself
        // (idempotence), and its labelling is the identity ordering.
        let again = canonical_form(&form.instance);
        assert_eq!(form.key, again.key);
        assert_eq!(form.instance, again.instance);
        // The labelling is a bijection.
        let mut seen = vec![false; inst.num_agents()];
        for &c in &form.labelling {
            assert!(!seen[c]);
            seen[c] = true;
        }
    }

    #[test]
    fn unpermute_round_trips() {
        let inst = cycle4();
        let form = canonical_form(&inst);
        // Value of canonical agent c is 10 + c; original agent v must read
        // back 10 + labelling[v].
        let canonical_values: Vec<f64> = (0..4).map(|c| 10.0 + c as f64).collect();
        let original = form.unpermute(&canonical_values);
        for (v, value) in original.iter().enumerate() {
            assert_eq!(*value, 10.0 + form.labelling[v] as f64);
        }
    }

    #[test]
    fn quasi_form_at_zero_epsilon_is_the_exact_form() {
        let inst = cycle4();
        let exact = canonical_form(&inst);
        let quasi = quasi_canonical_form(&inst, 0.0);
        assert_eq!(quasi.form, exact);
        assert_eq!(quasi.slack, 0.0);
        // Negative ε is clamped to the identity as well.
        assert_eq!(quasi_canonical_form(&inst, -1.0).form, exact);
    }

    #[test]
    fn quasi_form_merges_epsilon_close_weights() {
        // Two copies of the 2-agent instance whose coefficients differ by a
        // small relative jitter: exact keys differ, quasi keys coincide.
        let build = |a: f64, c: f64| {
            let mut b = InstanceBuilder::new();
            let v = b.add_agents(2);
            let i = b.add_resource();
            b.set_consumption(i, v[0], 1.0);
            b.set_consumption(i, v[1], a);
            let k = b.add_party();
            b.set_benefit(k, v[0], c);
            b.build().unwrap()
        };
        let lhs = build(1.0, 1.0);
        let rhs = build(1.04, 1.02);
        assert_ne!(canonical_key(&lhs), canonical_key(&rhs));
        let ql = quasi_canonical_form(&lhs, 0.1);
        let qr = quasi_canonical_form(&rhs, 0.1);
        assert_eq!(ql.form.key, qr.form.key);
        assert_eq!(ql.form.instance, qr.form.instance);
        assert_eq!(ql.slack, 0.0, "weights already on the grid incur no slack");
        assert!(qr.slack > 0.0 && qr.slack <= 0.1, "slack {}", qr.slack);
        // Weights a full bucket apart stay distinct.
        assert_ne!(ql.form.key, quasi_canonical_form(&build(1.2, 1.0), 0.1).form.key);
    }

    #[test]
    fn quantise_weight_respects_the_grid_invariants() {
        // q ≤ w < q·(1+ε) over a wide sweep of magnitudes and tolerances,
        // including values adjacent to bucket edges.
        for &epsilon in &[1e-6f64, 1e-3, 0.05, 0.5, 3.0] {
            let base = 1.0 + epsilon;
            for exp in [-200i32, -8, -1, 0, 1, 7, 150] {
                let edge = base.powi(exp);
                for w in [
                    edge,
                    edge * (1.0 + f64::EPSILON),
                    edge * (1.0 - f64::EPSILON),
                    edge * (1.0 + epsilon / 2.0),
                    1e-12,
                    0.3,
                    1.0,
                    7.25,
                    1e15,
                ] {
                    let q = quantise_weight(w, epsilon);
                    assert!(q > 0.0 && q <= w, "q={q} w={w} ε={epsilon}");
                    assert!(w / q <= base * (1.0 + 1e-12), "q={q} w={w} ε={epsilon}");
                    // Deterministic: a pure function of the bits.
                    assert_eq!(q.to_bits(), quantise_weight(w, epsilon).to_bits());
                }
            }
        }
    }

    #[test]
    fn quasi_slack_is_measured_not_assumed() {
        // The slack reported is exactly max(w/q − 1) over the coefficients.
        let mut b = InstanceBuilder::new();
        let v = b.add_agents(2);
        let i = b.add_resource();
        b.set_consumption(i, v[0], 1.0);
        b.set_consumption(i, v[1], 1.07);
        let k = b.add_party();
        b.set_benefit(k, v[0], 2.3);
        let inst = b.build().unwrap();
        let epsilon = 0.1;
        let quasi = quasi_canonical_form(&inst, epsilon);
        // black_box keeps the recomputation on the runtime code path: with
        // constant arguments the optimiser const-folds `quantise_weight`
        // (its `ln`/`powi` fold through a different evaluation than libm),
        // which is an ulp off the library's runtime result in release.
        let expected = [1.0f64, 1.07, 2.3]
            .iter()
            .map(|&w| w / quantise_weight(std::hint::black_box(w), epsilon) - 1.0)
            .fold(0.0f64, f64::max);
        assert_eq!(quasi.slack, expected);
        assert!(quasi.slack <= epsilon + 1e-12);
        // And the quantised canonical instance really carries grid weights.
        for i in quasi.form.instance.resource_ids() {
            for &(_, w) in quasi.form.instance.resource(i).members() {
                assert_eq!(w.to_bits(), quantise_weight(w, epsilon).to_bits());
            }
        }
    }

    #[test]
    fn empty_and_tiny_instances() {
        let mut b = InstanceBuilder::new();
        let v = b.add_agent();
        let i = b.add_resource();
        b.set_consumption(i, v, 1.0);
        let k = b.add_party();
        b.set_benefit(k, v, 1.0);
        let single = b.build().unwrap();
        let form = canonical_form(&single);
        assert_eq!(form.labelling, vec![0]);
        assert_eq!(form.instance, single);
    }
}
