//! Closed-form approximation bounds proved in the paper.
//!
//! These functions implement the formulas of Sections 4 and 5 so that
//! experiments can compare measured approximation ratios against the exact
//! values the paper claims:
//!
//! * the safe algorithm's guarantee `Δ_I^V` (Section 4, first paragraph),
//! * the Theorem 1 local inapproximability threshold
//!   `Δ_I^V/2 + 1/2 − 1/(2Δ_K^V − 2)`,
//! * the finite-`R` version of the same bound that appears at the end of the
//!   proof (Section 4.6),
//! * the Corollary 2 threshold `Δ_I^V/2`,
//! * the Theorem 3 guarantee `γ(R−1)·γ(R)`,
//! * exact ball sizes and relative growth for infinite `d`-dimensional grids,
//!   used to check the paper's `γ(r) = 1 + Θ(1/r)` claim.

/// The approximation ratio of the safe algorithm: `Δ_I^V = max_i |V_i|`.
///
/// The safe algorithm (Papadimitriou–Yannakakis) sets
/// `x_v = min_{i ∈ I_v} 1 / (a_iv |V_i|)` and is a local `Δ_I^V`-approximation
/// with horizon `r = 1`.
pub fn safe_upper_bound(max_resource_support: usize) -> f64 {
    max_resource_support as f64
}

/// The Theorem 1 inapproximability threshold.
///
/// For `Δ_I^V ≥ 2` and `Δ_K^V ≥ 2`, no local algorithm achieves an
/// approximation ratio below
/// `Δ_I^V/2 + 1/2 − 1/(2·Δ_K^V − 2)`,
/// even restricted to `a_iv ∈ {0,1}`, `Δ_V^I = Δ_V^K = 1`.
///
/// # Panics
///
/// Panics if either bound is below 2 (the theorem does not apply there).
pub fn theorem1_lower_bound(max_resource_support: usize, max_party_support: usize) -> f64 {
    assert!(
        max_resource_support >= 2 && max_party_support >= 2,
        "Theorem 1 requires Δ_I^V ≥ 2 and Δ_K^V ≥ 2"
    );
    let d_iv = max_resource_support as f64;
    let d_kv = max_party_support as f64;
    d_iv / 2.0 + 0.5 - 1.0 / (2.0 * d_kv - 2.0)
}

/// The finite-`R` lower bound derived at the end of the proof of Theorem 1:
///
/// `α ≥ d/2 + 1 − 1/(2D) + (d + 2 − 2dD − 1/D) / (2 d^R D^R − 2)`
///
/// where `d = Δ_I^V − 1` and `D = Δ_K^V − 1`.  As `R → ∞` this converges to
/// [`theorem1_lower_bound`].  The proof requires `dD > 1`.
pub fn theorem1_finite_r_bound(
    max_resource_support: usize,
    max_party_support: usize,
    r_levels: u32,
) -> f64 {
    assert!(
        max_resource_support >= 2 && max_party_support >= 2,
        "Theorem 1 requires Δ_I^V ≥ 2 and Δ_K^V ≥ 2"
    );
    let d = (max_resource_support - 1) as f64;
    let dd = (max_party_support - 1) as f64;
    assert!(d * dd > 1.0, "the finite-R bound requires dD > 1");
    let pow = (d * dd).powi(r_levels as i32);
    d / 2.0 + 1.0 - 1.0 / (2.0 * dd) + (d + 2.0 - 2.0 * d * dd - 1.0 / dd) / (2.0 * pow - 2.0)
}

/// The Corollary 2 inapproximability threshold `Δ_I^V / 2`, which holds even
/// with both `a_iv ∈ {0,1}` and `c_kv ∈ {0,1}` (and `Δ_K^V = 2`).
///
/// # Panics
///
/// Panics if `max_resource_support < 3`; the corollary is stated for
/// `Δ_I^V > 2`.
pub fn corollary2_lower_bound(max_resource_support: usize) -> f64 {
    assert!(max_resource_support > 2, "Corollary 2 requires Δ_I^V > 2");
    max_resource_support as f64 / 2.0
}

/// The Theorem 3 approximation guarantee `γ(R−1) · γ(R)` of the local
/// averaging algorithm, given the two measured growth values.
pub fn theorem3_ratio(gamma_r_minus_1: f64, gamma_r: f64) -> f64 {
    gamma_r_minus_1 * gamma_r
}

/// Number of lattice points of the infinite `dim`-dimensional grid `Z^dim`
/// within L1 (shortest-path) distance `r` of a fixed vertex.
///
/// This is the standard "crystal ball" count
/// `|B(v,r)| = Σ_{i=0}^{min(dim,r)} 2^i · C(dim,i) · C(r,i)`,
/// which grows as `Θ(r^dim)`; the paper's Section 5 uses this to argue that
/// `γ(r) = 1 + Θ(1/r)` on `d`-dimensional grids, so the local averaging
/// algorithm is a local approximation scheme there.
pub fn grid_ball_size(dim: u32, r: u32) -> u128 {
    let mut total: u128 = 0;
    for i in 0..=dim.min(r) {
        total += (1u128 << i) * binomial(dim as u64, i as u64) * binomial(r as u64, i as u64);
    }
    total
}

/// Relative growth `|B(v,r+1)| / |B(v,r)|` of the infinite `dim`-dimensional
/// grid.
pub fn grid_growth(dim: u32, r: u32) -> f64 {
    grid_ball_size(dim, r + 1) as f64 / grid_ball_size(dim, r) as f64
}

/// Binomial coefficient `C(n, k)` as an exact `u128` (panics on overflow).
pub fn binomial(n: u64, k: u64) -> u128 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut result: u128 = 1;
    for j in 0..k {
        result = result.checked_mul((n - j) as u128).expect("binomial overflow") / (j + 1) as u128;
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn safe_bound_is_identity_on_support() {
        assert_eq!(safe_upper_bound(3), 3.0);
        assert_eq!(safe_upper_bound(1), 1.0);
    }

    #[test]
    fn theorem1_examples() {
        // Δ_I^V = 2, Δ_K^V = 2: 1 + 1/2 - 1/2 = 1 (the trivial bound).
        assert!((theorem1_lower_bound(2, 2) - 1.0).abs() < 1e-12);
        // Δ_I^V = 3, Δ_K^V = 3: 1.5 + 0.5 - 0.25 = 1.75.
        assert!((theorem1_lower_bound(3, 3) - 1.75).abs() < 1e-12);
        // Δ_I^V = 4, Δ_K^V = 2: 2 + 0.5 - 0.5 = 2.
        assert!((theorem1_lower_bound(4, 2) - 2.0).abs() < 1e-12);
        // Large Δ_K^V: approaches Δ_I^V/2 + 1/2.
        let b = theorem1_lower_bound(5, 1000);
        assert!(b < 3.0 && b > 2.99);
    }

    #[test]
    #[should_panic]
    fn theorem1_rejects_small_bounds() {
        theorem1_lower_bound(1, 2);
    }

    #[test]
    fn finite_r_bound_converges_to_theorem1() {
        let asymptotic = theorem1_lower_bound(3, 3);
        let far = theorem1_finite_r_bound(3, 3, 20);
        let near = theorem1_finite_r_bound(3, 3, 2);
        assert!((far - asymptotic).abs() < 1e-6);
        // The finite-R correction term is negative for small R (the bound is
        // weaker), and increases towards the asymptotic value.
        assert!(near < far);
        assert!(far <= asymptotic + 1e-9);
    }

    #[test]
    fn finite_r_bound_is_monotone_in_r() {
        let mut prev = f64::NEG_INFINITY;
        for r in 1..10 {
            let b = theorem1_finite_r_bound(4, 3, r);
            assert!(b >= prev);
            prev = b;
        }
    }

    #[test]
    fn corollary2_examples() {
        assert_eq!(corollary2_lower_bound(3), 1.5);
        assert_eq!(corollary2_lower_bound(6), 3.0);
    }

    #[test]
    #[should_panic]
    fn corollary2_rejects_delta_two() {
        corollary2_lower_bound(2);
    }

    #[test]
    fn theorem3_ratio_is_product() {
        assert_eq!(theorem3_ratio(1.5, 1.2), 1.5 * 1.2);
        assert_eq!(theorem3_ratio(1.0, 1.0), 1.0);
    }

    #[test]
    fn binomial_small_values() {
        assert_eq!(binomial(0, 0), 1);
        assert_eq!(binomial(5, 2), 10);
        assert_eq!(binomial(10, 10), 1);
        assert_eq!(binomial(4, 7), 0);
        assert_eq!(binomial(52, 5), 2_598_960);
    }

    #[test]
    fn grid_ball_sizes_dimension_one_and_two() {
        // 1-D: |B(v,r)| = 2r + 1.
        for r in 0..20 {
            assert_eq!(grid_ball_size(1, r), (2 * r + 1) as u128);
        }
        // 2-D: |B(v,r)| = 2r^2 + 2r + 1 (centered square numbers).
        for r in 0..20 {
            let r = r as u128;
            assert_eq!(grid_ball_size(2, r as u32), 2 * r * r + 2 * r + 1);
        }
        // 0-D: a single point regardless of radius.
        assert_eq!(grid_ball_size(0, 10), 1);
        // r = 0: only the centre.
        assert_eq!(grid_ball_size(7, 0), 1);
    }

    #[test]
    fn grid_growth_tends_to_one() {
        // γ(r) = 1 + Θ(1/r): strictly decreasing towards 1 for fixed dim ≥ 1.
        for dim in 1..=4u32 {
            let mut prev = f64::INFINITY;
            for r in 1..60 {
                let g = grid_growth(dim, r);
                assert!(g > 1.0);
                assert!(g <= prev + 1e-12);
                prev = g;
            }
            assert!(grid_growth(dim, 200) < 1.03 * dim as f64 / dim as f64 + 0.05);
        }
        // Quantitative check of the 1/r scaling in 2-D: r·(γ(r) − 1) is bounded.
        for r in [10u32, 20, 40, 80] {
            let excess = (grid_growth(2, r) - 1.0) * r as f64;
            assert!(excess > 1.0 && excess < 3.0, "excess = {excess}");
        }
    }
}
