//! A dense two-phase primal simplex solver.
//!
//! The solver works on the classical full tableau: phase 1 minimises the sum
//! of artificial variables to find a basic feasible solution, phase 2
//! optimises the user objective.  Entering columns are chosen by Dantzig's
//! rule (largest reduced cost) with an automatic switch to Bland's rule after
//! a fixed number of pivots, which guarantees termination even on degenerate
//! instances.
//!
//! The implementation favours clarity and robustness over raw speed: the LPs
//! solved in this repository are the bounded-size local LPs (9) of the paper
//! and moderate-size global baselines, for which a dense tableau is entirely
//! adequate.

use crate::problem::{ConstraintOp, LpError, LpProblem, ObjectiveSense};

/// Outcome classification of an LP solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LpStatus {
    /// An optimal solution was found.
    Optimal,
    /// The constraints admit no feasible point.
    Infeasible,
    /// The objective is unbounded over the feasible region.
    Unbounded,
}

/// Result of an LP solve.
#[derive(Debug, Clone, PartialEq)]
pub struct LpSolution {
    /// Outcome classification.
    pub status: LpStatus,
    /// The primal solution (meaningful only when `status == Optimal`;
    /// a feasible point of the phase-1 relaxation otherwise, or empty).
    pub x: Vec<f64>,
    /// Objective value of `x` under the problem's own sense
    /// (meaningful only when `status == Optimal`).
    pub objective: f64,
    /// Total number of simplex *iterations* (entering/leaving pivots)
    /// performed across both phases.  Basis-installation eliminations — the
    /// warm-start analogue of a factorisation — are counted separately in
    /// [`installs`](LpSolution::installs), matching how LP solvers
    /// conventionally report warm-start savings.
    pub pivots: usize,
    /// Gauss–Jordan eliminations spent installing a starting basis (0 for a
    /// plain cold solve; a cold fallback after a rejected warm start carries
    /// the rejected installation's eliminations).
    pub installs: usize,
    /// The final basis: the column index that is basic in each tableau row
    /// (structural and slack/surplus columns only, after artificials are
    /// driven out).  Empty unless `status == Optimal`.  Feed it back through
    /// [`solve_with_warm_start`] to re-solve the same (or a perturbed)
    /// problem without paying for phase 1.
    pub basis: Vec<usize>,
}

/// A starting basis for [`solve_with_warm_start`], usually taken from a
/// previous [`LpSolution::basis`].
///
/// The basis is a set of column indices in the solver's column layout
/// (structural variables first, then one slack/surplus column per `≤`/`≥`
/// constraint, in constraint order).  A warm start is *advisory*: if the
/// basis does not fit the problem (wrong cardinality, singular, or primal
/// infeasible) the solver silently falls back to the ordinary two-phase
/// method, so reusing a basis across structurally different problems is safe.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WarmStart {
    /// Basic column indices, one per constraint row.
    pub basis: Vec<usize>,
}

impl WarmStart {
    /// A warm start from the final basis of a previous solution.
    pub fn from_solution(solution: &LpSolution) -> Self {
        Self { basis: solution.basis.clone() }
    }
}

/// Tuning knobs for the simplex solver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimplexOptions {
    /// Absolute tolerance used for reduced costs, ratio tests and
    /// feasibility checks.
    pub tolerance: f64,
    /// Hard cap on the number of pivots per phase (0 = automatic:
    /// `200 · (rows + columns) + 1000`).
    pub max_pivots: usize,
    /// Number of Dantzig pivots before switching to Bland's rule
    /// (0 = automatic: `20 · (rows + columns)`).
    pub bland_after: usize,
}

impl Default for SimplexOptions {
    fn default() -> Self {
        Self { tolerance: 1e-9, max_pivots: 0, bland_after: 0 }
    }
}

/// Solves `problem` with the default options.
pub fn solve(problem: &LpProblem) -> Result<LpSolution, LpError> {
    solve_with(problem, &SimplexOptions::default())
}

/// Solves `problem` with explicit options.
pub fn solve_with(problem: &LpProblem, options: &SimplexOptions) -> Result<LpSolution, LpError> {
    problem.validate()?;
    Tableau::build(problem, options).solve(problem)
}

/// Solves `problem`, optionally warm-started from a previously optimal basis.
///
/// If `warm` is given and its basis can be installed (right cardinality,
/// non-singular, primal feasible), phase 1 is skipped entirely and the solver
/// proceeds straight to phase-2 pivots from that basis; re-solving a problem
/// from its own optimal basis performs no phase-2 pivots at all.  Any basis
/// that does not fit is ignored and the ordinary two-phase solve runs
/// instead, so the warm start can never change the reported status.
pub fn solve_with_warm_start(
    problem: &LpProblem,
    options: &SimplexOptions,
    warm: Option<&WarmStart>,
) -> Result<LpSolution, LpError> {
    problem.validate()?;
    let mut wasted = 0;
    if let Some(ws) = warm {
        let probe = Tableau::build(problem, options).solve_warm(problem, ws)?;
        match probe.solution {
            Some(solution) => return Ok(solution),
            // The rejected installation's eliminations are real work; carry
            // them into the cold solve's account.
            None => wasted = probe.wasted_installs,
        }
    }
    let mut solution = Tableau::build(problem, options).solve(problem)?;
    solution.installs += wasted;
    Ok(solution)
}

/// What a warm-start-only attempt ([`try_warm_solve`]) did.
#[derive(Debug, Clone, PartialEq)]
pub struct WarmProbe {
    /// The warm solution, or `None` when the basis could not be installed
    /// (wrong cardinality, artificial columns, singular, or primal
    /// infeasible) or the seeded phase 2 ran out of its pivot budget.
    pub solution: Option<LpSolution>,
    /// Gauss–Jordan eliminations performed before the attempt was rejected
    /// (0 when `solution` is `Some` — a kept solution counts them in its own
    /// [`installs`](LpSolution::installs)).
    pub wasted_installs: usize,
    /// Simplex iterations performed before the attempt was rejected (only
    /// non-zero when the seeded phase 2 hit the iteration limit; a kept
    /// solution counts its iterations in [`pivots`](LpSolution::pivots)).
    pub wasted_pivots: usize,
}

/// Attempts *only* the warm-started solve, without the cold fallback.
///
/// The caller decides what to do on rejection — typically run the cold path
/// and account for the wasted work via [`WarmProbe::wasted_installs`] /
/// [`WarmProbe::wasted_pivots`], which is what the engine's warm-start
/// statistics need.  A seeded phase 2 that exceeds the configured iteration
/// limit is reported as a rejection (the cold path may well fit the same
/// budget), not as an error.
pub fn try_warm_solve(
    problem: &LpProblem,
    options: &SimplexOptions,
    warm: &WarmStart,
) -> Result<WarmProbe, LpError> {
    problem.validate()?;
    Tableau::build(problem, options).solve_warm(problem, warm)
}

/// Attempts a **dual-simplex** solve from a basis that may be primal
/// infeasible, without the cold fallback.
///
/// The primal warm start ([`try_warm_solve`]) rejects any basis whose basic
/// solution violates a constraint — which is exactly what happens to a
/// recorded optimal basis after the problem's coefficients are perturbed.
/// Such a basis usually remains *dual* feasible (no non-basic column has a
/// positive reduced cost), and the dual simplex restores primal feasibility
/// from it directly: pick the most infeasible row, pivot on the column the
/// dual ratio test selects, repeat.  A final primal phase 2 then mops up
/// (it performs zero pivots when the dual run terminated at an optimum).
///
/// The probe is rejected — with the same [`WarmProbe`] accounting as the
/// primal path — when the basis cannot be installed at all, is not dual
/// feasible, the dual ratio test finds an empty column (the perturbed
/// problem is primal infeasible from this basis), or the pivot budget runs
/// out.  Rejection is never an error: the caller falls back to a cold solve.
pub fn try_dual_warm_solve(
    problem: &LpProblem,
    options: &SimplexOptions,
    warm: &WarmStart,
) -> Result<WarmProbe, LpError> {
    problem.validate()?;
    Tableau::build(problem, options).solve_dual_warm(problem, warm)
}

/// An optimal solution deterministically re-derived from its basis by
/// [`resolve_from_basis`].
#[derive(Debug, Clone, PartialEq)]
pub struct BasisResolution {
    /// The optimal solution (structural variables).
    pub x: Vec<f64>,
    /// Objective value of `x` under the problem's own sense.
    pub objective: f64,
    /// Gauss–Jordan eliminations spent installing bases.
    pub installs: usize,
    /// The solution-uniqueness certificate.
    ///
    /// `true` iff every non-basic structural/slack column with a ~zero
    /// reduced cost provably moves only slack variables — so the optimal
    /// *activity vector* `x` is unique even when several bases represent it.
    /// When it holds, `x` is re-derived through the **canonical vertex
    /// basis** (positive variables first, then index order), which depends
    /// only on `(problem, x)`: any simplex path that reaches the optimum —
    /// warm-started from an arbitrary seed or cold two-phase — resolves to
    /// bit-identical numbers.
    ///
    /// The check is deliberately conservative: a zero-reduced-cost column
    /// whose ratio test is blocked at a degenerate zero step is still
    /// treated as potentially moving `x` (a degenerate pivot could unblock
    /// it at a neighbouring basis of the same vertex), so alternative optima
    /// hidden behind degeneracy refuse certification rather than falsely
    /// certify.  At nondegenerate optimal bases the classification is exact.
    pub certified: bool,
}

/// Deterministically re-derives an optimal solution from a final basis.
///
/// The basis (a *set* — it is sorted before installation) is installed into
/// a fresh tableau by Gauss–Jordan elimination with a fixed pivot-row rule,
/// so the resulting `x` is a function of `(problem, basis set)` only and not
/// of whichever pivot sequence produced the basis.  When the
/// [`BasisResolution::certified`] uniqueness certificate holds, the numbers
/// are additionally re-derived through the canonical *vertex* basis, making
/// them independent even of which optimal basis the solve terminated at —
/// the property that lets a warm-started solve return **bit-identical**
/// numbers to the cold solve it replaces.
///
/// Returns `Ok(None)` when the basis cannot be installed or is not optimal
/// for `problem` within the configured tolerance.
pub fn resolve_from_basis(
    problem: &LpProblem,
    options: &SimplexOptions,
    basis: &[usize],
) -> Result<Option<BasisResolution>, LpError> {
    problem.validate()?;
    let mut sorted = basis.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    if sorted.len() != basis.len() {
        return Ok(None);
    }
    let mut t = Tableau::build(problem, options);
    if !t.install_basis(&sorted) {
        return Ok(None);
    }
    let maximize = problem.sense == ObjectiveSense::Maximize;
    let mut cost = vec![0.0; t.num_cols];
    for (j, c) in problem.objective.iter().enumerate() {
        cost[j] = if maximize { *c } else { -*c };
    }
    // The certificate margin: comfortably above the rounding error of the
    // installation eliminations, far below any real reduced cost.
    let margin = t.tolerance * 100.0;
    let mut is_basic = vec![false; t.num_cols];
    for &b in &t.basis {
        is_basic[b] = true;
    }
    let mut certified = true;
    for (j, _) in is_basic.iter().take(t.artificial_start).enumerate().filter(|(_, b)| !**b) {
        let rc = t.reduced_cost(&cost, j);
        if rc > t.tolerance {
            // The basis is not optimal for this problem.
            return Ok(None);
        }
        if rc > -margin && t.column_moves_x(j, margin) {
            // A zero-reduced-cost direction that changes the activities:
            // the optimal x is not unique, equality with the cold path
            // cannot be certified.
            certified = false;
        }
    }
    if certified {
        // Re-derive x through the canonical vertex basis, which depends
        // only on (problem, x): positive variables first, then index order.
        let positive: Vec<usize> = t
            .rows
            .iter()
            .zip(&t.basis)
            .filter(|(row, _)| row[t.num_cols] > margin)
            .map(|(_, &b)| b)
            .collect();
        let mut canonical = Tableau::build(problem, options);
        if canonical.install_vertex_basis(&positive) {
            let x = canonical.extract_solution();
            let objective = problem.objective_value(&x);
            return Ok(Some(BasisResolution {
                x,
                objective,
                installs: t.installs + canonical.installs,
                certified: true,
            }));
        }
        certified = false;
    }
    let x = t.extract_solution();
    let objective = problem.objective_value(&x);
    Ok(Some(BasisResolution { x, objective, installs: t.installs, certified }))
}

/// The dense simplex tableau together with its basis bookkeeping.
struct Tableau {
    /// `rows[r]` has `num_cols + 1` entries; the last one is the RHS.
    rows: Vec<Vec<f64>>,
    /// Basis variable (column index) of each row.
    basis: Vec<usize>,
    /// Total number of columns (structural + slack/surplus + artificial).
    num_cols: usize,
    /// Number of structural variables.
    num_structural: usize,
    /// Column indices of the artificial variables.
    artificial_start: usize,
    tolerance: f64,
    max_pivots: usize,
    bland_after: usize,
    pivots: usize,
    installs: usize,
}

impl Tableau {
    fn build(problem: &LpProblem, options: &SimplexOptions) -> Self {
        let n = problem.num_vars;
        let m = problem.constraints.len();

        // Normalise rows so that every RHS is non-negative.
        // (op, dense coefficients, rhs)
        let mut norm: Vec<(ConstraintOp, Vec<f64>, f64)> = Vec::with_capacity(m);
        for c in &problem.constraints {
            let mut dense = vec![0.0; n];
            for (j, a) in &c.coeffs {
                dense[*j] += a;
            }
            let (op, dense, rhs) = if c.rhs < 0.0 {
                let flipped = match c.op {
                    ConstraintOp::Le => ConstraintOp::Ge,
                    ConstraintOp::Ge => ConstraintOp::Le,
                    ConstraintOp::Eq => ConstraintOp::Eq,
                };
                (flipped, dense.iter().map(|a| -a).collect(), -c.rhs)
            } else {
                (c.op, dense, c.rhs)
            };
            norm.push((op, dense, rhs));
        }

        // Column layout: structural | slack & surplus | artificial.
        let num_slack = norm
            .iter()
            .filter(|(op, _, _)| matches!(op, ConstraintOp::Le | ConstraintOp::Ge))
            .count();
        let num_artificial = norm
            .iter()
            .filter(|(op, _, _)| matches!(op, ConstraintOp::Ge | ConstraintOp::Eq))
            .count();
        let slack_start = n;
        let artificial_start = n + num_slack;
        let num_cols = n + num_slack + num_artificial;

        let mut rows = Vec::with_capacity(m);
        let mut basis = Vec::with_capacity(m);
        let mut next_slack = slack_start;
        let mut next_artificial = artificial_start;
        for (op, dense, rhs) in &norm {
            let mut row = vec![0.0; num_cols + 1];
            row[..n].copy_from_slice(dense);
            row[num_cols] = *rhs;
            match op {
                ConstraintOp::Le => {
                    row[next_slack] = 1.0;
                    basis.push(next_slack);
                    next_slack += 1;
                }
                ConstraintOp::Ge => {
                    row[next_slack] = -1.0;
                    next_slack += 1;
                    row[next_artificial] = 1.0;
                    basis.push(next_artificial);
                    next_artificial += 1;
                }
                ConstraintOp::Eq => {
                    row[next_artificial] = 1.0;
                    basis.push(next_artificial);
                    next_artificial += 1;
                }
            }
            rows.push(row);
        }

        let auto_max = 200 * (m + num_cols) + 1000;
        let auto_bland = 20 * (m + num_cols);
        Tableau {
            rows,
            basis,
            num_cols,
            num_structural: n,
            artificial_start,
            tolerance: options.tolerance,
            max_pivots: if options.max_pivots == 0 { auto_max } else { options.max_pivots },
            bland_after: if options.bland_after == 0 { auto_bland } else { options.bland_after },
            pivots: 0,
            installs: 0,
        }
    }

    fn solve(mut self, problem: &LpProblem) -> Result<LpSolution, LpError> {
        // ---- Phase 1: maximise −Σ artificials (feasibility). ----
        if self.artificial_start < self.num_cols {
            let mut phase1_cost = vec![0.0; self.num_cols];
            for c in phase1_cost.iter_mut().skip(self.artificial_start) {
                *c = -1.0;
            }
            let status = self.optimize(&phase1_cost, false)?;
            debug_assert_ne!(status, LpStatus::Unbounded, "phase 1 objective is bounded by 0");
            let infeasibility: f64 = self
                .basis
                .iter()
                .zip(&self.rows)
                .filter(|(b, _)| **b >= self.artificial_start)
                .map(|(_, row)| row[self.num_cols])
                .sum();
            if infeasibility > self.feasibility_tolerance() {
                return Ok(LpSolution {
                    status: LpStatus::Infeasible,
                    x: vec![],
                    objective: f64::NAN,
                    pivots: self.pivots,
                    installs: self.installs,
                    basis: vec![],
                });
            }
            self.drive_out_artificials();
        }
        self.phase2(problem)
    }

    /// Attempts a warm-started solve from the given basis.
    ///
    /// A rejected attempt (the caller falls back to the cold two-phase path
    /// on a fresh tableau) still reports the eliminations spent on the
    /// failed installation and any iterations burnt before hitting the
    /// pivot budget.
    fn solve_warm(mut self, problem: &LpProblem, warm: &WarmStart) -> Result<WarmProbe, LpError> {
        if !self.install_basis(&warm.basis) {
            return Ok(WarmProbe {
                solution: None,
                wasted_installs: self.installs,
                wasted_pivots: 0,
            });
        }
        match self.phase2(problem) {
            Ok(solution) => {
                Ok(WarmProbe { solution: Some(solution), wasted_installs: 0, wasted_pivots: 0 })
            }
            // Burning through the pivot budget rejects the seed but must not
            // lose the accounting of the work already performed.
            Err(LpError::IterationLimit { iterations }) => Ok(WarmProbe {
                solution: None,
                wasted_installs: self.installs,
                wasted_pivots: iterations,
            }),
            Err(e) => Err(e),
        }
    }

    /// Attempts a dual-simplex solve from a possibly primal-infeasible basis.
    ///
    /// See [`try_dual_warm_solve`] for the contract; like [`solve_warm`], a
    /// rejected attempt reports its wasted installation eliminations and
    /// pivots instead of erroring.
    fn solve_dual_warm(
        mut self,
        problem: &LpProblem,
        warm: &WarmStart,
    ) -> Result<WarmProbe, LpError> {
        if !self.install_basis_columns(&warm.basis) {
            return Ok(WarmProbe {
                solution: None,
                wasted_installs: self.installs,
                wasted_pivots: 0,
            });
        }
        let mut cost = vec![0.0; self.num_cols];
        let maximize = problem.sense == ObjectiveSense::Maximize;
        for (j, c) in problem.objective.iter().enumerate() {
            cost[j] = if maximize { *c } else { -*c };
        }
        // The dual method is only sound from a dual-feasible start: every
        // non-basic structural/slack column must have a non-positive reduced
        // cost (up to the rounding the installation eliminations introduce).
        let margin = self.tolerance * 100.0;
        let dual_feasible = (0..self.artificial_start)
            .filter(|j| !self.basis.contains(j))
            .all(|j| self.reduced_cost(&cost, j) <= margin);
        if !dual_feasible {
            return Ok(WarmProbe {
                solution: None,
                wasted_installs: self.installs,
                wasted_pivots: 0,
            });
        }
        match self.dual_optimize(&cost) {
            // Primal feasibility restored; phase 2 mops up any residual
            // reduced-cost slack (zero pivots when the dual run terminated
            // at an optimum) and extracts the solution.
            Ok(true) => match self.phase2(problem) {
                Ok(solution) => {
                    Ok(WarmProbe { solution: Some(solution), wasted_installs: 0, wasted_pivots: 0 })
                }
                Err(LpError::IterationLimit { iterations }) => Ok(WarmProbe {
                    solution: None,
                    wasted_installs: self.installs,
                    wasted_pivots: iterations,
                }),
                Err(e) => Err(e),
            },
            // The dual ratio test ran dry on an infeasible row: from this
            // basis the problem is primal infeasible, so the seed is useless.
            Ok(false) => Ok(WarmProbe {
                solution: None,
                wasted_installs: self.installs,
                wasted_pivots: self.pivots,
            }),
            Err(LpError::IterationLimit { iterations }) => Ok(WarmProbe {
                solution: None,
                wasted_installs: self.installs,
                wasted_pivots: iterations,
            }),
            Err(e) => Err(e),
        }
    }

    /// The dual simplex loop: repeatedly pivots the most primal-infeasible
    /// row against the column chosen by the dual ratio test, preserving dual
    /// feasibility while driving every RHS non-negative.
    ///
    /// Returns `Ok(true)` when primal feasibility is restored (the basis is
    /// then optimal up to tolerance), `Ok(false)` when an infeasible row has
    /// no eligible entering column — the standard dual-simplex proof of
    /// primal infeasibility from this basis.
    fn dual_optimize(&mut self, cost: &[f64]) -> Result<bool, LpError> {
        let mut local_pivots = 0usize;
        loop {
            if local_pivots > self.max_pivots {
                return Err(LpError::IterationLimit { iterations: self.pivots });
            }
            // Leaving row: most negative RHS; ties towards the smallest
            // basis index, mirroring the primal ratio test's determinism.
            let mut leaving: Option<(usize, f64)> = None;
            for (r, row) in self.rows.iter().enumerate() {
                let rhs = row[self.num_cols];
                if rhs < -self.tolerance {
                    let better = match leaving {
                        None => true,
                        Some((best_r, best_rhs)) => {
                            rhs < best_rhs - self.tolerance
                                || (rhs < best_rhs + self.tolerance
                                    && self.basis[r] < self.basis[best_r])
                        }
                    };
                    if better {
                        leaving = Some((r, rhs));
                    }
                }
            }
            let Some((r, _)) = leaving else {
                return Ok(true);
            };
            // Entering column: among non-basic structural/slack columns with
            // a negative entry in the leaving row, minimise the dual ratio
            // |reduced cost / entry| — ascending scan keeps ties at the
            // smallest column index.
            let mut entering: Option<(usize, f64)> = None;
            for j in 0..self.artificial_start {
                if self.basis.contains(&j) {
                    continue;
                }
                let a = self.rows[r][j];
                if a < -self.tolerance {
                    let ratio = self.reduced_cost(cost, j) / a;
                    let better = match entering {
                        None => true,
                        Some((_, best)) => ratio < best - self.tolerance,
                    };
                    if better {
                        entering = Some((j, ratio));
                    }
                }
            }
            let Some((j, _)) = entering else {
                return Ok(false);
            };
            self.pivot(r, j);
            local_pivots += 1;
            self.pivots += 1;
        }
    }

    /// Pivots the tableau into the given basis via Gauss–Jordan elimination.
    ///
    /// Returns `false` (leaving the tableau in an unusable state) if the
    /// basis has the wrong cardinality, touches artificial columns, is
    /// singular, or yields a primal-infeasible basic solution.
    fn install_basis(&mut self, basis: &[usize]) -> bool {
        if !self.install_basis_columns(basis) {
            return false;
        }
        // The basic solution must be primal feasible to skip phase 1.
        let tol = self.feasibility_tolerance();
        self.rows.iter().all(|row| row[self.num_cols] >= -tol)
    }

    /// The structural part of [`install_basis`]: pivots the tableau into the
    /// given basis without checking primal feasibility of the result.
    ///
    /// The dual simplex starts from exactly the bases the feasibility check
    /// rejects, so it installs through this variant and then restores
    /// feasibility by dual pivots instead of refusing.
    fn install_basis_columns(&mut self, basis: &[usize]) -> bool {
        let m = self.rows.len();
        if basis.len() != m {
            return false;
        }
        let mut chosen = vec![false; self.num_cols];
        for &j in basis {
            if j >= self.artificial_start || chosen[j] {
                return false;
            }
            chosen[j] = true;
        }
        let mut row_assigned = vec![false; m];
        for &j in basis {
            // Pick the best remaining pivot row for column j (largest
            // magnitude, for numerical stability).
            let pivot_row = (0..m)
                .filter(|&r| !row_assigned[r] && self.rows[r][j].abs() > self.tolerance)
                .max_by(|&a, &b| {
                    self.rows[a][j]
                        .abs()
                        .partial_cmp(&self.rows[b][j].abs())
                        .expect("tableau entries are finite")
                });
            let Some(r) = pivot_row else {
                return false; // singular basis
            };
            self.pivot(r, j);
            self.installs += 1;
            row_assigned[r] = true;
        }
        true
    }

    /// Whether entering column `j` could change any structural variable —
    /// the *conservative* direction: `true` unless the column provably moves
    /// only slack variables.
    ///
    /// The simplex direction of `j` moves `x_j` itself (if structural) and
    /// every basic variable in a row where `j` has a significant entry.  A
    /// column whose ratio test is bound at a degenerate zero step cannot
    /// move anything *from this basis*, but a degenerate pivot may unblock
    /// it at a neighbouring basis of the same vertex, so degenerate blocking
    /// is deliberately **not** treated as immobility — doing so certifies
    /// optima whose alternative-optimum directions are merely blocked here
    /// (e.g. `max x1+x2+x3` s.t. `x1+x2+x3 ≤ 1, x2 ≤ x3, x3 ≤ x2`, whose
    /// optimal face is the segment `(1−2t, t, t)`).
    fn column_moves_x(&self, j: usize, margin: f64) -> bool {
        if j < self.num_structural {
            return true;
        }
        self.rows
            .iter()
            .zip(&self.basis)
            .any(|(row, &b)| row[j].abs() > margin && b < self.num_structural)
    }

    /// Installs the *canonical vertex basis*: the deterministic completion
    /// of the given positive (basic, non-zero) columns by the lowest-index
    /// independent structural/slack columns.
    ///
    /// The candidate order — sorted positive columns first, then all other
    /// non-artificial columns ascending — is a function of the vertex only,
    /// not of the basis that discovered it.  Returns `false` when the
    /// candidates cannot span all rows (only possible with equality
    /// constraints, whose rows have no slack column).
    fn install_vertex_basis(&mut self, positive: &[usize]) -> bool {
        let m = self.rows.len();
        let mut candidates: Vec<usize> = positive.to_vec();
        candidates.sort_unstable();
        candidates.dedup();
        if candidates.len() > m || candidates.iter().any(|&j| j >= self.artificial_start) {
            return false;
        }
        let positive_count = candidates.len();
        let mut is_positive = vec![false; self.num_cols];
        for &j in &candidates {
            is_positive[j] = true;
        }
        candidates.extend((0..self.artificial_start).filter(|&j| !is_positive[j]));

        let mut row_assigned = vec![false; m];
        let mut assigned = 0usize;
        for (rank, &j) in candidates.iter().enumerate() {
            if assigned == m {
                break;
            }
            let pivot_row = (0..m)
                .filter(|&r| !row_assigned[r] && self.rows[r][j].abs() > self.tolerance)
                .max_by(|&a, &b| {
                    self.rows[a][j]
                        .abs()
                        .partial_cmp(&self.rows[b][j].abs())
                        .expect("tableau entries are finite")
                });
            match pivot_row {
                Some(r) => {
                    self.pivot(r, j);
                    self.installs += 1;
                    row_assigned[r] = true;
                    assigned += 1;
                }
                // A dependent *positive* column contradicts the vertex
                // (its value could not be non-zero): bail out.
                None if rank < positive_count => return false,
                None => {}
            }
        }
        assigned == m
    }

    /// Phase 2 from the current (feasible) basis: optimise the user
    /// objective, extract the solution and the final basis.
    fn phase2(&mut self, problem: &LpProblem) -> Result<LpSolution, LpError> {
        let mut cost = vec![0.0; self.num_cols];
        let maximize = problem.sense == ObjectiveSense::Maximize;
        for (j, c) in problem.objective.iter().enumerate() {
            cost[j] = if maximize { *c } else { -*c };
        }
        let status = self.optimize(&cost, true)?;
        if status == LpStatus::Unbounded {
            return Ok(LpSolution {
                status,
                x: vec![],
                objective: if maximize { f64::INFINITY } else { f64::NEG_INFINITY },
                pivots: self.pivots,
                installs: self.installs,
                basis: vec![],
            });
        }

        let x = self.extract_solution();
        let objective = problem.objective_value(&x);
        Ok(LpSolution {
            status: LpStatus::Optimal,
            x,
            objective,
            pivots: self.pivots,
            installs: self.installs,
            basis: self.basis.clone(),
        })
    }

    /// A slightly looser tolerance for the final phase-1 feasibility decision;
    /// pivoting accumulates error proportional to the problem size.
    fn feasibility_tolerance(&self) -> f64 {
        self.tolerance * 100.0 * (1 + self.rows.len()) as f64
    }

    /// Runs simplex pivots until no entering column improves the given cost
    /// vector.  When `block_artificials` is set, artificial columns may not
    /// enter the basis (used in phase 2).
    fn optimize(&mut self, cost: &[f64], block_artificials: bool) -> Result<LpStatus, LpError> {
        let mut local_pivots = 0usize;
        loop {
            if local_pivots > self.max_pivots {
                return Err(LpError::IterationLimit { iterations: self.pivots });
            }
            let use_bland = local_pivots > self.bland_after;
            let Some(entering) = self.choose_entering(cost, block_artificials, use_bland) else {
                return Ok(LpStatus::Optimal);
            };
            let Some(leaving_row) = self.choose_leaving(entering) else {
                return Ok(LpStatus::Unbounded);
            };
            self.pivot(leaving_row, entering);
            local_pivots += 1;
            self.pivots += 1;
        }
    }

    /// Reduced cost of column `j`: `c_j − Σ_r c_{basis(r)} · T[r][j]`.
    fn reduced_cost(&self, cost: &[f64], j: usize) -> f64 {
        let mut rc = cost[j];
        for (row, &b) in self.rows.iter().zip(&self.basis) {
            let cb = cost[b];
            if cb != 0.0 {
                rc -= cb * row[j];
            }
        }
        rc
    }

    fn choose_entering(
        &self,
        cost: &[f64],
        block_artificials: bool,
        use_bland: bool,
    ) -> Option<usize> {
        let limit = if block_artificials { self.artificial_start } else { self.num_cols };
        let mut best: Option<(usize, f64)> = None;
        for j in 0..limit {
            if self.basis.contains(&j) {
                continue;
            }
            let rc = self.reduced_cost(cost, j);
            if rc > self.tolerance {
                if use_bland {
                    return Some(j);
                }
                match best {
                    Some((_, best_rc)) if best_rc >= rc => {}
                    _ => best = Some((j, rc)),
                }
            }
        }
        best.map(|(j, _)| j)
    }

    /// Ratio test; ties are broken towards the smallest basis index, which
    /// together with Bland's entering rule prevents cycling.
    fn choose_leaving(&self, entering: usize) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for (r, row) in self.rows.iter().enumerate() {
            let coeff = row[entering];
            if coeff > self.tolerance {
                let ratio = row[self.num_cols] / coeff;
                let better = match best {
                    None => true,
                    Some((best_r, best_ratio)) => {
                        ratio < best_ratio - self.tolerance
                            || (ratio < best_ratio + self.tolerance
                                && self.basis[r] < self.basis[best_r])
                    }
                };
                if better {
                    best = Some((r, ratio));
                }
            }
        }
        best.map(|(r, _)| r)
    }

    fn pivot(&mut self, pivot_row: usize, entering: usize) {
        let pivot_value = self.rows[pivot_row][entering];
        debug_assert!(pivot_value.abs() > self.tolerance, "pivot on a ~zero element");
        let inv = 1.0 / pivot_value;
        for value in self.rows[pivot_row].iter_mut() {
            *value *= inv;
        }
        let pivot_copy = self.rows[pivot_row].clone();
        for (r, row) in self.rows.iter_mut().enumerate() {
            if r == pivot_row {
                continue;
            }
            let factor = row[entering];
            if factor != 0.0 {
                for (value, pivot_entry) in row.iter_mut().zip(&pivot_copy) {
                    *value -= factor * pivot_entry;
                }
                // Guard against drift: the entering column must be exactly 0
                // in all non-pivot rows after elimination.
                row[entering] = 0.0;
            }
        }
        self.basis[pivot_row] = entering;
    }

    /// After phase 1, pivot any artificial variable that is still basic (at
    /// value 0) out of the basis, or drop its row if the constraint turned
    /// out to be redundant.
    fn drive_out_artificials(&mut self) {
        let mut r = 0;
        while r < self.rows.len() {
            if self.basis[r] < self.artificial_start {
                r += 1;
                continue;
            }
            // Find a non-artificial, non-basic column to pivot on.
            let pivot_col = (0..self.artificial_start)
                .find(|&j| self.rows[r][j].abs() > self.tolerance && !self.basis.contains(&j));
            if let Some(j) = pivot_col {
                self.pivot(r, j);
                self.pivots += 1;
                r += 1;
            } else {
                // The row is a linear combination of the others: drop it.
                self.rows.swap_remove(r);
                self.basis.swap_remove(r);
            }
        }
    }

    fn extract_solution(&self) -> Vec<f64> {
        let mut x = vec![0.0; self.num_structural];
        for (row, &b) in self.rows.iter().zip(&self.basis) {
            if b < self.num_structural {
                // Clamp tiny negative values produced by rounding.
                x[b] = row[self.num_cols].max(0.0);
            }
        }
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{LpConstraint, LpProblem, ObjectiveSense};

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "expected {b}, got {a}");
    }

    #[test]
    fn simple_two_variable_maximum() {
        // max 3x + 5y  s.t.  x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18  (classic example).
        // Optimum: x = 2, y = 6, objective 36.
        let mut p = LpProblem::new(2, ObjectiveSense::Maximize);
        p.set_objective(0, 3.0).set_objective(1, 5.0);
        p.add_constraint(LpConstraint::le(vec![(0, 1.0)], 4.0));
        p.add_constraint(LpConstraint::le(vec![(1, 2.0)], 12.0));
        p.add_constraint(LpConstraint::le(vec![(0, 3.0), (1, 2.0)], 18.0));
        let sol = solve(&p).unwrap();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_close(sol.objective, 36.0, 1e-7);
        assert_close(sol.x[0], 2.0, 1e-7);
        assert_close(sol.x[1], 6.0, 1e-7);
        assert!(p.is_feasible(&sol.x, 1e-7));
    }

    #[test]
    fn minimization_with_ge_constraints() {
        // min 2x + 3y  s.t.  x + y ≥ 10, x ≥ 2, y ≥ 3.
        // Optimum: x = 7, y = 3 → 23.
        let mut p = LpProblem::new(2, ObjectiveSense::Minimize);
        p.set_objective(0, 2.0).set_objective(1, 3.0);
        p.add_constraint(LpConstraint::ge(vec![(0, 1.0), (1, 1.0)], 10.0));
        p.add_constraint(LpConstraint::ge(vec![(0, 1.0)], 2.0));
        p.add_constraint(LpConstraint::ge(vec![(1, 1.0)], 3.0));
        let sol = solve(&p).unwrap();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_close(sol.objective, 23.0, 1e-7);
        assert_close(sol.x[0], 7.0, 1e-7);
        assert_close(sol.x[1], 3.0, 1e-7);
    }

    #[test]
    fn equality_constraints() {
        // max x + 2y  s.t.  x + y = 4, x − y ≤ 2.
        // Optimum: y as large as possible: x = 0, y = 4 → 8.
        let mut p = LpProblem::new(2, ObjectiveSense::Maximize);
        p.set_objective(0, 1.0).set_objective(1, 2.0);
        p.add_constraint(LpConstraint::eq(vec![(0, 1.0), (1, 1.0)], 4.0));
        p.add_constraint(LpConstraint::le(vec![(0, 1.0), (1, -1.0)], 2.0));
        let sol = solve(&p).unwrap();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_close(sol.objective, 8.0, 1e-7);
        assert_close(sol.x[0], 0.0, 1e-7);
        assert_close(sol.x[1], 4.0, 1e-7);
    }

    #[test]
    fn infeasible_problem_is_detected() {
        // x ≤ 1 and x ≥ 2 cannot both hold.
        let mut p = LpProblem::new(1, ObjectiveSense::Maximize);
        p.set_objective(0, 1.0);
        p.add_constraint(LpConstraint::le(vec![(0, 1.0)], 1.0));
        p.add_constraint(LpConstraint::ge(vec![(0, 1.0)], 2.0));
        let sol = solve(&p).unwrap();
        assert_eq!(sol.status, LpStatus::Infeasible);
    }

    #[test]
    fn unbounded_problem_is_detected() {
        // max x with only x ≥ 1.
        let mut p = LpProblem::new(1, ObjectiveSense::Maximize);
        p.set_objective(0, 1.0);
        p.add_constraint(LpConstraint::ge(vec![(0, 1.0)], 1.0));
        let sol = solve(&p).unwrap();
        assert_eq!(sol.status, LpStatus::Unbounded);
    }

    #[test]
    fn unconstrained_problems() {
        // No constraints, non-positive objective: x = 0 is optimal.
        let mut p = LpProblem::new(2, ObjectiveSense::Maximize);
        p.set_objective(0, -1.0);
        let sol = solve(&p).unwrap();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_close(sol.objective, 0.0, 1e-9);

        // No constraints, positive objective: unbounded.
        let mut p = LpProblem::new(1, ObjectiveSense::Maximize);
        p.set_objective(0, 1.0);
        assert_eq!(solve(&p).unwrap().status, LpStatus::Unbounded);
    }

    #[test]
    fn negative_rhs_is_normalised() {
        // −x ≤ −3 means x ≥ 3; minimise x → 3.
        let mut p = LpProblem::new(1, ObjectiveSense::Minimize);
        p.set_objective(0, 1.0);
        p.add_constraint(LpConstraint::le(vec![(0, -1.0)], -3.0));
        let sol = solve(&p).unwrap();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_close(sol.x[0], 3.0, 1e-7);
    }

    #[test]
    fn redundant_equalities_are_handled() {
        // x + y = 2 stated twice plus the implied 2x + 2y = 4.
        let mut p = LpProblem::new(2, ObjectiveSense::Maximize);
        p.set_objective(0, 1.0);
        p.add_constraint(LpConstraint::eq(vec![(0, 1.0), (1, 1.0)], 2.0));
        p.add_constraint(LpConstraint::eq(vec![(0, 1.0), (1, 1.0)], 2.0));
        p.add_constraint(LpConstraint::eq(vec![(0, 2.0), (1, 2.0)], 4.0));
        let sol = solve(&p).unwrap();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_close(sol.objective, 2.0, 1e-7);
        assert_close(sol.x[0], 2.0, 1e-7);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Highly degenerate: many constraints active at the optimum.
        let mut p = LpProblem::new(3, ObjectiveSense::Maximize);
        p.set_objective(0, 1.0).set_objective(1, 1.0).set_objective(2, 1.0);
        for a in 0..3usize {
            for b in 0..3usize {
                if a != b {
                    p.add_constraint(LpConstraint::le(vec![(a, 1.0), (b, 1.0)], 1.0));
                }
            }
        }
        p.add_constraint(LpConstraint::le(vec![(0, 1.0), (1, 1.0), (2, 1.0)], 1.0));
        let sol = solve(&p).unwrap();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_close(sol.objective, 1.0, 1e-7);
    }

    #[test]
    fn duplicate_sparse_entries_are_summed() {
        // Coefficient list mentions variable 0 twice: 0.5 + 0.5 = 1.
        let mut p = LpProblem::new(1, ObjectiveSense::Maximize);
        p.set_objective(0, 1.0);
        p.add_constraint(LpConstraint::le(vec![(0, 0.5), (0, 0.5)], 2.0));
        let sol = solve(&p).unwrap();
        assert_close(sol.x[0], 2.0, 1e-7);
    }

    #[test]
    fn fractional_packing_example() {
        // max x1 + x2 + x3 subject to pairwise packing constraints
        // x1 + x2 ≤ 1, x2 + x3 ≤ 1, x1 + x3 ≤ 1: optimum 1.5 at (0.5,0.5,0.5).
        let mut p = LpProblem::new(3, ObjectiveSense::Maximize);
        for j in 0..3 {
            p.set_objective(j, 1.0);
        }
        p.add_constraint(LpConstraint::le(vec![(0, 1.0), (1, 1.0)], 1.0));
        p.add_constraint(LpConstraint::le(vec![(1, 1.0), (2, 1.0)], 1.0));
        p.add_constraint(LpConstraint::le(vec![(0, 1.0), (2, 1.0)], 1.0));
        let sol = solve(&p).unwrap();
        assert_close(sol.objective, 1.5, 1e-7);
        for j in 0..3 {
            assert_close(sol.x[j], 0.5, 1e-7);
        }
    }

    #[test]
    fn mixed_constraint_types() {
        // max 2x + y  s.t.  x + y ≤ 10, x − y ≥ 3, y = 2  →  x = 8? No:
        // x + 2 ≤ 10 → x ≤ 8; x − 2 ≥ 3 → x ≥ 5; optimum x = 8, obj = 18.
        let mut p = LpProblem::new(2, ObjectiveSense::Maximize);
        p.set_objective(0, 2.0).set_objective(1, 1.0);
        p.add_constraint(LpConstraint::le(vec![(0, 1.0), (1, 1.0)], 10.0));
        p.add_constraint(LpConstraint::ge(vec![(0, 1.0), (1, -1.0)], 3.0));
        p.add_constraint(LpConstraint::eq(vec![(1, 1.0)], 2.0));
        let sol = solve(&p).unwrap();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_close(sol.x[0], 8.0, 1e-7);
        assert_close(sol.x[1], 2.0, 1e-7);
        assert_close(sol.objective, 18.0, 1e-7);
    }

    #[test]
    fn zero_rhs_constraints() {
        // max ω subject to ω − x ≤ 0, x ≤ 1: optimum ω = x = 1.
        let mut p = LpProblem::new(2, ObjectiveSense::Maximize);
        p.set_objective(1, 1.0);
        p.add_constraint(LpConstraint::le(vec![(1, 1.0), (0, -1.0)], 0.0));
        p.add_constraint(LpConstraint::le(vec![(0, 1.0)], 1.0));
        let sol = solve(&p).unwrap();
        assert_close(sol.objective, 1.0, 1e-7);
    }

    #[test]
    fn reports_pivot_count() {
        let mut p = LpProblem::new(2, ObjectiveSense::Maximize);
        p.set_objective(0, 1.0).set_objective(1, 1.0);
        p.add_constraint(LpConstraint::le(vec![(0, 1.0), (1, 1.0)], 1.0));
        let sol = solve(&p).unwrap();
        assert!(sol.pivots >= 1);
    }

    #[test]
    fn larger_random_like_packing_lp_agrees_with_symmetry() {
        // max Σ x_j subject to x_j + x_{j+1} ≤ 1 cyclically over 8 variables.
        // By symmetry the optimum is 4 (alternating 1,0,... or all 0.5).
        let n = 8;
        let mut p = LpProblem::new(n, ObjectiveSense::Maximize);
        for j in 0..n {
            p.set_objective(j, 1.0);
            p.add_constraint(LpConstraint::le(vec![(j, 1.0), ((j + 1) % n, 1.0)], 1.0));
        }
        let sol = solve(&p).unwrap();
        assert_close(sol.objective, 4.0, 1e-7);
        assert!(p.is_feasible(&sol.x, 1e-7));
    }

    #[test]
    fn warm_start_from_optimal_basis_skips_all_pivoting_work() {
        let mut p = LpProblem::new(2, ObjectiveSense::Maximize);
        p.set_objective(0, 3.0).set_objective(1, 5.0);
        p.add_constraint(LpConstraint::le(vec![(0, 1.0)], 4.0));
        p.add_constraint(LpConstraint::le(vec![(1, 2.0)], 12.0));
        p.add_constraint(LpConstraint::le(vec![(0, 3.0), (1, 2.0)], 18.0));
        let cold = solve(&p).unwrap();
        assert_eq!(cold.status, LpStatus::Optimal);
        assert_eq!(cold.basis.len(), 3);

        let warm = WarmStart::from_solution(&cold);
        let resolved = solve_with_warm_start(&p, &SimplexOptions::default(), Some(&warm)).unwrap();
        assert_eq!(resolved.status, LpStatus::Optimal);
        assert_close(resolved.objective, cold.objective, 1e-7);
        assert_close(resolved.x[0], cold.x[0], 1e-7);
        assert_close(resolved.x[1], cold.x[1], 1e-7);
        // Installing the basis costs one elimination per row — counted as
        // installs, not pivots — and phase 2 finds nothing to improve.
        assert_eq!(resolved.pivots, 0);
        assert_eq!(resolved.installs, 3);
    }

    #[test]
    fn warm_start_re_solve_costs_only_the_installation() {
        // ≥-constraints force artificial variables, so the cold solve pays a
        // full phase 1 plus phase 2; the warm re-solve from the optimal basis
        // pays exactly one installation elimination per row and never more
        // than the cold solve.
        let mut p = LpProblem::new(3, ObjectiveSense::Minimize);
        for j in 0..3 {
            p.set_objective(j, 1.0 + j as f64);
            p.add_constraint(LpConstraint::ge(vec![(j, 1.0)], 1.0));
        }
        p.add_constraint(LpConstraint::ge(vec![(0, 1.0), (1, 1.0), (2, 1.0)], 4.0));
        let cold = solve(&p).unwrap();
        assert_eq!(cold.status, LpStatus::Optimal);
        assert!(cold.pivots >= 4, "phase 1 must have pivoted artificials out");
        let warm = solve_with_warm_start(
            &p,
            &SimplexOptions::default(),
            Some(&WarmStart::from_solution(&cold)),
        )
        .unwrap();
        assert_eq!(warm.status, LpStatus::Optimal);
        assert_close(warm.objective, cold.objective, 1e-7);
        assert_eq!(warm.pivots, 0); // no simplex iterations at all
        assert_eq!(warm.installs, 4); // one installation elimination per row
        assert!(warm.pivots <= cold.pivots, "warm {} vs cold {}", warm.pivots, cold.pivots);
    }

    #[test]
    fn unusable_warm_starts_fall_back_to_the_cold_path() {
        let mut p = LpProblem::new(2, ObjectiveSense::Maximize);
        p.set_objective(0, 1.0).set_objective(1, 1.0);
        p.add_constraint(LpConstraint::le(vec![(0, 1.0), (1, 1.0)], 1.0));
        let cold = solve(&p).unwrap();
        let bogus = [
            WarmStart { basis: vec![] },     // wrong cardinality
            WarmStart { basis: vec![0, 0] }, // duplicates + wrong cardinality
            WarmStart { basis: vec![99] },   // out of range (artificial zone)
            WarmStart { basis: vec![1] },    // valid shape, different vertex
        ];
        for warm in &bogus {
            let sol = solve_with_warm_start(&p, &SimplexOptions::default(), Some(warm)).unwrap();
            assert_eq!(sol.status, LpStatus::Optimal);
            assert_close(sol.objective, cold.objective, 1e-9);
        }
    }

    #[test]
    fn warm_start_never_changes_the_reported_status() {
        // Infeasible problem: the (shape-valid) warm basis is primal
        // infeasible, so the solver must fall back and still say Infeasible.
        let mut p = LpProblem::new(1, ObjectiveSense::Maximize);
        p.set_objective(0, 1.0);
        p.add_constraint(LpConstraint::le(vec![(0, 1.0)], 1.0));
        p.add_constraint(LpConstraint::ge(vec![(0, 1.0)], 2.0));
        let warm = WarmStart { basis: vec![0, 1] };
        let sol = solve_with_warm_start(&p, &SimplexOptions::default(), Some(&warm)).unwrap();
        assert_eq!(sol.status, LpStatus::Infeasible);
    }

    #[test]
    fn resolve_from_basis_reproduces_the_optimum() {
        let mut p = LpProblem::new(2, ObjectiveSense::Maximize);
        p.set_objective(0, 3.0).set_objective(1, 5.0);
        p.add_constraint(LpConstraint::le(vec![(0, 1.0)], 4.0));
        p.add_constraint(LpConstraint::le(vec![(1, 2.0)], 12.0));
        p.add_constraint(LpConstraint::le(vec![(0, 3.0), (1, 2.0)], 18.0));
        let sol = solve(&p).unwrap();
        let res = resolve_from_basis(&p, &SimplexOptions::default(), &sol.basis)
            .unwrap()
            .unwrap();
        assert_close(res.x[0], 2.0, 1e-7);
        assert_close(res.x[1], 6.0, 1e-7);
        assert_close(res.objective, 36.0, 1e-7);
        // One installation elimination per row, twice: the optimality check
        // installs the given basis, the certified path re-installs the
        // canonical vertex basis.
        assert_eq!(res.installs, 6);
        assert!(res.certified, "a nondegenerate unique optimum must be certified");
        // The resolution is a pure function of the basis *set*: any
        // permutation of the basis produces bit-identical numbers.
        let mut reversed = sol.basis.clone();
        reversed.reverse();
        let again = resolve_from_basis(&p, &SimplexOptions::default(), &reversed)
            .unwrap()
            .unwrap();
        assert_eq!(res.x, again.x);
    }

    #[test]
    fn resolve_from_basis_rejects_non_optimal_and_malformed_bases() {
        let mut p = LpProblem::new(2, ObjectiveSense::Maximize);
        p.set_objective(0, 1.0);
        p.add_constraint(LpConstraint::le(vec![(0, 1.0)], 1.0));
        p.add_constraint(LpConstraint::le(vec![(1, 1.0)], 1.0));
        let opts = SimplexOptions::default();
        // The all-slack basis (x = 0) is feasible but not optimal.
        assert_eq!(resolve_from_basis(&p, &opts, &[2, 3]).unwrap(), None);
        // Wrong cardinality and duplicates are rejected.
        assert_eq!(resolve_from_basis(&p, &opts, &[0]).unwrap(), None);
        assert_eq!(resolve_from_basis(&p, &opts, &[0, 0]).unwrap(), None);
        // The optimal basis resolves.
        let sol = solve(&p).unwrap();
        assert!(resolve_from_basis(&p, &opts, &sol.basis).unwrap().is_some());
    }

    #[test]
    fn certificate_refuses_problems_with_multiple_optima() {
        // max x + y subject to x + y ≤ 1: a whole edge of optima, so no
        // basis may be certified unique.
        let mut p = LpProblem::new(2, ObjectiveSense::Maximize);
        p.set_objective(0, 1.0).set_objective(1, 1.0);
        p.add_constraint(LpConstraint::le(vec![(0, 1.0), (1, 1.0)], 1.0));
        let sol = solve(&p).unwrap();
        let res = resolve_from_basis(&p, &SimplexOptions::default(), &sol.basis)
            .unwrap()
            .unwrap();
        assert!(!res.certified, "an optimal edge must not be certified unique");
    }

    #[test]
    fn certificate_accepts_degenerate_optima_with_a_unique_x() {
        // x ≤ 1 twice: at the optimum one slack is basic at value 0 (a
        // degenerate basis), but the optimal *activity vector* x = 1 is
        // unique — which is what the certificate is about.  Every optimal
        // basis must resolve to bit-identical numbers through the canonical
        // vertex basis.
        let mut p = LpProblem::new(1, ObjectiveSense::Maximize);
        p.set_objective(0, 1.0);
        p.add_constraint(LpConstraint::le(vec![(0, 1.0)], 1.0));
        p.add_constraint(LpConstraint::le(vec![(0, 1.0)], 1.0));
        let opts = SimplexOptions::default();
        let sol = solve(&p).unwrap();
        let res = resolve_from_basis(&p, &opts, &sol.basis).unwrap().unwrap();
        assert_close(res.x[0], 1.0, 1e-9);
        assert!(res.certified, "a degenerate optimum with a unique x must be certified");
        // The two optimal bases {x, s1} and {x, s2} represent the same
        // vertex; both must resolve to the same bits.
        let alt = resolve_from_basis(&p, &opts, &[0, 1]).unwrap().unwrap();
        let alt2 = resolve_from_basis(&p, &opts, &[0, 2]).unwrap().unwrap();
        assert_eq!(alt.x[0].to_bits(), alt2.x[0].to_bits());
        assert_eq!(alt.x[0].to_bits(), res.x[0].to_bits());
    }

    #[test]
    fn certificate_refuses_alternative_optima_hidden_behind_degeneracy() {
        // max x1+x2+x3  s.t.  x1+x2+x3 ≤ 1, x2 − x3 ≤ 0, x3 − x2 ≤ 0:
        // the optimal face is the segment (1−2t, t, t), t ∈ [0, 1/2], so x
        // is NOT unique — but at the vertex (1,0,0) the moves towards
        // (0,1/2,1/2) are blocked behind degenerate zero-step ratio tests.
        // Treating "degenerate-blocked" as "immobile" would falsely certify
        // this basis; the conservative check must refuse it.
        let mut p = LpProblem::new(3, ObjectiveSense::Maximize);
        for j in 0..3 {
            p.set_objective(j, 1.0);
        }
        p.add_constraint(LpConstraint::le(vec![(0, 1.0), (1, 1.0), (2, 1.0)], 1.0));
        p.add_constraint(LpConstraint::le(vec![(1, 1.0), (2, -1.0)], 0.0));
        p.add_constraint(LpConstraint::le(vec![(1, -1.0), (2, 1.0)], 0.0));
        let opts = SimplexOptions::default();
        // Basis {x1, s2, s3} represents the optimal vertex (1, 0, 0).
        let res = resolve_from_basis(&p, &opts, &[0, 4, 5]).unwrap().unwrap();
        assert_close(res.x[0], 1.0, 1e-9);
        assert!(
            !res.certified,
            "an optimum with alternative optima behind degenerate pivots must not be certified"
        );
    }

    #[test]
    fn try_warm_solve_reports_uninstallable_bases_as_none() {
        let mut p = LpProblem::new(2, ObjectiveSense::Maximize);
        p.set_objective(0, 1.0).set_objective(1, 1.0);
        p.add_constraint(LpConstraint::le(vec![(0, 1.0), (1, 1.0)], 1.0));
        let opts = SimplexOptions::default();
        // Shape-invalid bases are rejected before any elimination runs.
        let probe = try_warm_solve(&p, &opts, &WarmStart { basis: vec![] }).unwrap();
        assert!(probe.solution.is_none());
        assert_eq!(probe.wasted_installs, 0);
        assert!(try_warm_solve(&p, &opts, &WarmStart { basis: vec![99] })
            .unwrap()
            .solution
            .is_none());
        let cold = solve(&p).unwrap();
        let probe = try_warm_solve(&p, &opts, &WarmStart::from_solution(&cold)).unwrap();
        assert_eq!(probe.wasted_installs, 0);
        let warm = probe.solution.unwrap();
        assert_eq!(warm.status, LpStatus::Optimal);
        assert_close(warm.objective, cold.objective, 1e-9);
    }

    #[test]
    fn rejected_installations_report_their_wasted_eliminations() {
        // A shape-valid basis that is primal infeasible here: every install
        // elimination runs before the feasibility check rejects it, and the
        // probe must own up to that work.
        let mut p = LpProblem::new(1, ObjectiveSense::Maximize);
        p.set_objective(0, 1.0);
        p.add_constraint(LpConstraint::le(vec![(0, 1.0)], 1.0));
        p.add_constraint(LpConstraint::ge(vec![(0, 1.0)], 2.0));
        let probe =
            try_warm_solve(&p, &SimplexOptions::default(), &WarmStart { basis: vec![0, 1] })
                .unwrap();
        assert!(probe.solution.is_none());
        assert!(probe.wasted_installs > 0);
        // The cold fallback of the convenience API carries those installs.
        let sol = solve_with_warm_start(
            &p,
            &SimplexOptions::default(),
            Some(&WarmStart { basis: vec![0, 1] }),
        )
        .unwrap();
        assert_eq!(sol.status, LpStatus::Infeasible);
        assert!(sol.installs > 0);
    }

    #[test]
    fn dual_warm_solve_recovers_from_a_primal_infeasible_basis() {
        // max 3x + 5y  s.t.  x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18 — then tighten the
        // first constraint to x ≤ 1.  At the old optimum (2, 6) that row's
        // slack is basic at 4 − 2 = 2; re-installed on the tightened problem
        // it sits at 1 − 2 = −1, so the primal warm start must reject the
        // basis while the dual simplex repairs it.
        let mut p = LpProblem::new(2, ObjectiveSense::Maximize);
        p.set_objective(0, 3.0).set_objective(1, 5.0);
        p.add_constraint(LpConstraint::le(vec![(0, 1.0)], 4.0));
        p.add_constraint(LpConstraint::le(vec![(1, 2.0)], 12.0));
        p.add_constraint(LpConstraint::le(vec![(0, 3.0), (1, 2.0)], 18.0));
        let cold = solve(&p).unwrap();
        let warm = WarmStart::from_solution(&cold);

        let mut tightened = LpProblem::new(2, ObjectiveSense::Maximize);
        tightened.set_objective(0, 3.0).set_objective(1, 5.0);
        tightened.add_constraint(LpConstraint::le(vec![(0, 1.0)], 1.0));
        tightened.add_constraint(LpConstraint::le(vec![(1, 2.0)], 12.0));
        tightened.add_constraint(LpConstraint::le(vec![(0, 3.0), (1, 2.0)], 18.0));
        let opts = SimplexOptions::default();
        let primal_probe = try_warm_solve(&tightened, &opts, &warm).unwrap();
        assert!(primal_probe.solution.is_none(), "primal install must reject infeasible bases");

        let dual_probe = try_dual_warm_solve(&tightened, &opts, &warm).unwrap();
        let dual = dual_probe.solution.expect("dual simplex repairs the basis");
        assert_eq!(dual.status, LpStatus::Optimal);
        let reference = solve(&tightened).unwrap();
        assert_close(dual.objective, reference.objective, 1e-7);
        assert_close(dual.x[0], reference.x[0], 1e-7);
        assert_close(dual.x[1], reference.x[1], 1e-7);
        assert!(dual.pivots >= 1, "repair requires at least one dual pivot");
    }

    #[test]
    fn dual_warm_solve_on_the_unperturbed_problem_pivots_zero_times() {
        // A recorded optimal basis of the very same problem is both primal
        // and dual feasible: the dual loop finds nothing to repair and
        // phase 2 nothing to improve.
        let mut p = LpProblem::new(2, ObjectiveSense::Maximize);
        p.set_objective(0, 3.0).set_objective(1, 5.0);
        p.add_constraint(LpConstraint::le(vec![(0, 1.0)], 4.0));
        p.add_constraint(LpConstraint::le(vec![(1, 2.0)], 12.0));
        p.add_constraint(LpConstraint::le(vec![(0, 3.0), (1, 2.0)], 18.0));
        let cold = solve(&p).unwrap();
        let probe =
            try_dual_warm_solve(&p, &SimplexOptions::default(), &WarmStart::from_solution(&cold))
                .unwrap();
        let sol = probe.solution.unwrap();
        assert_eq!(sol.pivots, 0);
        assert_close(sol.objective, cold.objective, 1e-9);
    }

    #[test]
    fn dual_warm_solve_rejects_dual_infeasible_and_malformed_bases() {
        let mut p = LpProblem::new(2, ObjectiveSense::Maximize);
        p.set_objective(0, 1.0).set_objective(1, 1.0);
        p.add_constraint(LpConstraint::le(vec![(0, 1.0), (1, 1.0)], 1.0));
        let opts = SimplexOptions::default();
        // Shape-invalid bases reject before any elimination.
        let probe = try_dual_warm_solve(&p, &opts, &WarmStart { basis: vec![] }).unwrap();
        assert!(probe.solution.is_none());
        assert_eq!(probe.wasted_installs, 0);
        assert!(try_dual_warm_solve(&p, &opts, &WarmStart { basis: vec![99] })
            .unwrap()
            .solution
            .is_none());
        // The all-slack basis (x = 0) is primal feasible but dual infeasible
        // (both structural columns have reduced cost +1): the dual method
        // does not apply and the probe must say so instead of pivoting.
        let probe = try_dual_warm_solve(&p, &opts, &WarmStart { basis: vec![2] }).unwrap();
        assert!(probe.solution.is_none());
        assert!(probe.wasted_installs > 0);
    }

    #[test]
    fn dual_warm_solve_reports_infeasible_problems_as_rejections() {
        // x ≤ 1 and x ≥ 2: from the basis {x, surplus} the dual ratio test
        // runs dry, which must come back as a rejection (cold path then
        // reports Infeasible), never a panic or a bogus solution.
        let mut p = LpProblem::new(1, ObjectiveSense::Maximize);
        p.set_objective(0, 1.0);
        p.add_constraint(LpConstraint::le(vec![(0, 1.0)], 1.0));
        p.add_constraint(LpConstraint::ge(vec![(0, 1.0)], 2.0));
        let probe =
            try_dual_warm_solve(&p, &SimplexOptions::default(), &WarmStart { basis: vec![0, 1] })
                .unwrap();
        assert!(probe.solution.is_none());
    }

    #[test]
    fn custom_options_small_pivot_budget_errors() {
        let mut p = LpProblem::new(3, ObjectiveSense::Maximize);
        for j in 0..3 {
            p.set_objective(j, 1.0);
            p.add_constraint(LpConstraint::le(vec![(j, 1.0)], 1.0));
        }
        let opts = SimplexOptions { max_pivots: 1, ..Default::default() };
        // With only one pivot allowed the solver must report the limit.
        match solve_with(&p, &opts) {
            Err(LpError::IterationLimit { .. }) => {}
            Ok(sol) => panic!("expected iteration limit, got {:?}", sol.status),
            Err(other) => panic!("unexpected error {other}"),
        }
    }
}
