//! Certified error intervals for lifted (quasi-class) solves.
//!
//! The lifted engine mode solves one LP per *quasi*-class: the ball LP with
//! every coefficient snapped down onto the geometric grid `(1+ε)^b`.  For a
//! ball whose coefficients were rounded by at most a relative slack `s`
//! (`q ≤ w ≤ (1+s)·q` for every coefficient `w` and its grid point `q`), the
//! exact ball optimum `ω*` and the quantised optimum `ω̃` bracket each other:
//!
//! * the exact optimiser `x*` is feasible for the quantised LP (consumptions
//!   only shrink) with objective at least `ω*/(1+s)` (benefits shrink by at
//!   most that factor), so `ω̃ ≥ ω*/(1+s)`;
//! * the quantised optimiser `x̃`, scaled by `1/(1+s)`, is feasible for the
//!   exact LP (consumptions grew by at most `1+s`) with objective at least
//!   `ω̃/(1+s)` (benefits only grew), so `ω* ≥ ω̃/(1+s)`.
//!
//! Hence `ω* ∈ [ω̃/(1+s), ω̃·(1+s)]` — the [`CertifiedInterval`] shipped with
//! every scattered lifted solution.  The slack `s` is *measured* during
//! quantisation (never assumed to equal ε), so the certificate stays sound
//! even when a coefficient straddles a grid edge in floating point.

/// A certified bracket around the exact optimum of one ball LP, derived from
/// the measured quantisation slack of a lifted solve (see the
/// [module docs](self)).  At slack `0` the interval degenerates to the exact
/// point `[ω, ω]` bit-for-bit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CertifiedInterval {
    /// Certified lower bound: the quantised optimum scaled by `1/(1+s)` —
    /// actually *achieved* by the scattered (rescaled) local solution.
    pub lower: f64,
    /// Certified upper bound `ω̃·(1+s)`.
    pub upper: f64,
}

impl CertifiedInterval {
    /// The interval `[ω̃/(1+s), ω̃·(1+s)]` certified by a quantised optimum
    /// `objective = ω̃` under a measured relative slack `slack = s ≥ 0`.
    ///
    /// With `slack == 0.0` both bounds are bit-identical to `objective`
    /// (division and multiplication by exactly `1.0`), which is what lets
    /// the `ε = 0` lifted mode reproduce the exact mode bit-for-bit.
    pub fn from_objective_and_slack(objective: f64, slack: f64) -> Self {
        debug_assert!(slack >= 0.0, "slack is a measured maximum of w/q − 1 ≥ 0");
        let factor = 1.0 + slack;
        Self { lower: objective / factor, upper: objective * factor }
    }

    /// The degenerate point interval `[value, value]` (an exact solve).
    pub fn point(value: f64) -> Self {
        Self { lower: value, upper: value }
    }

    /// Whether `value` lies in the interval, up to an absolute tolerance
    /// for solver floating point.
    pub fn contains(&self, value: f64, tolerance: f64) -> bool {
        value >= self.lower - tolerance && value <= self.upper + tolerance
    }

    /// Absolute width `upper − lower` (0 for an exact solve).
    pub fn width(&self) -> f64 {
        self.upper - self.lower
    }

    /// Relative width `upper / lower` — the certified approximation factor
    /// `(1+s)²`.  Defined as `1.0` for the degenerate `[0, 0]` interval of a
    /// party-less ball (whose optimum is exactly 0), and `∞` when the lower
    /// bound vanishes under a positive upper bound.
    pub fn relative_width(&self) -> f64 {
        if self.lower > 0.0 {
            self.upper / self.lower
        } else if self.upper == self.lower {
            1.0
        } else {
            f64::INFINITY
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_slack_is_a_bitwise_point() {
        for objective in [0.0, 0.25, 1.0, 3.5e-3, 1.7e9] {
            let interval = CertifiedInterval::from_objective_and_slack(objective, 0.0);
            assert_eq!(interval.lower.to_bits(), objective.to_bits());
            assert_eq!(interval.upper.to_bits(), objective.to_bits());
            assert_eq!(interval, CertifiedInterval::point(objective));
            assert_eq!(interval.width(), 0.0);
        }
    }

    #[test]
    fn positive_slack_brackets_the_objective() {
        let interval = CertifiedInterval::from_objective_and_slack(2.0, 0.1);
        assert!(interval.lower < 2.0 && 2.0 < interval.upper);
        assert!(interval.contains(2.0, 0.0));
        assert!(interval.contains(2.0 / 1.1, 1e-12));
        assert!(interval.contains(2.2, 1e-12));
        assert!(!interval.contains(2.0 * 1.1 + 1e-6, 1e-9));
        assert!(!interval.contains(2.0 / 1.1 - 1e-6, 1e-9));
        let rel = interval.relative_width();
        assert!((rel - 1.1f64 * 1.1).abs() < 1e-12, "rel {rel}");
    }

    #[test]
    fn degenerate_intervals_have_sane_relative_width() {
        assert_eq!(CertifiedInterval::point(0.0).relative_width(), 1.0);
        assert_eq!(CertifiedInterval { lower: 0.0, upper: 1.0 }.relative_width(), f64::INFINITY);
    }

    #[test]
    fn relative_width_grows_with_slack() {
        let mut previous = 1.0;
        for slack in [0.0, 1e-6, 1e-3, 0.05, 0.3] {
            let rel = CertifiedInterval::from_objective_and_slack(1.5, slack).relative_width();
            assert!(rel >= previous, "slack {slack}: {rel} < {previous}");
            previous = rel;
        }
    }
}
