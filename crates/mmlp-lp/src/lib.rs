//! A self-contained linear-programming substrate for max-min LPs.
//!
//! The algorithms in the paper need exact optima of two kinds of linear
//! programs:
//!
//! * the **global baseline** — the max-min LP itself, rewritten in the usual
//!   way as `maximise ω` subject to `Ax ≤ 1`, `ω·1 − Cx ≤ 0`, `x ≥ 0`
//!   (Section 1.3);
//! * the **local LPs** (9) solved inside every radius-`R` ball by the local
//!   averaging algorithm of Theorem 3.
//!
//! Both are small, dense and non-degenerate in the paper's setting, so a
//! classical two-phase primal simplex on a dense tableau is entirely adequate
//! and keeps the repository free of external solver dependencies.
//!
//! The crate exposes a small general-purpose LP interface ([`LpProblem`],
//! [`solve`]) plus the max-min-specific reformulation ([`maxmin`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod interval;
pub mod maxmin;
pub mod problem;
pub mod simplex;

pub use interval::CertifiedInterval;
pub use maxmin::{
    build_maxmin_lp, solve_maxmin, solve_maxmin_dual_resumed, solve_maxmin_resumed,
    solve_maxmin_seeded, solve_maxmin_warm, solve_maxmin_with, MaxMinOptimum, SeededSolveReport,
};
pub use problem::{ConstraintOp, LpConstraint, LpError, LpProblem, ObjectiveSense};
pub use simplex::{
    resolve_from_basis, solve, solve_with, solve_with_warm_start, try_dual_warm_solve,
    try_warm_solve, BasisResolution, LpSolution, LpStatus, SimplexOptions, WarmProbe, WarmStart,
};
