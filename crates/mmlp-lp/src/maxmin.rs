//! Reformulation of a max-min LP as an ordinary LP and its exact solution.
//!
//! Section 1.3 of the paper: introduce the auxiliary variable `ω` and solve
//!
//! ```text
//! maximise ω
//! subject to  A x ≤ 1
//!             ω·1 − C x ≤ 0
//!             x ≥ 0, ω ≥ 0
//! ```
//!
//! (`ω ≥ 0` is without loss of generality because all coefficients are
//! non-negative, so `x = 0, ω = 0` is always feasible.)  The optimum of this
//! LP is the global optimum `ω*` that local algorithms are compared against.

use crate::problem::{LpConstraint, LpError, LpProblem, ObjectiveSense};
use crate::simplex::{solve_with_warm_start, LpStatus, SimplexOptions, WarmStart};
use mmlp_core::{MaxMinInstance, Solution};

/// The exact optimum of a max-min LP, produced by the centralised simplex
/// baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct MaxMinOptimum {
    /// An optimal activity vector `x*`.
    pub solution: Solution,
    /// The optimal objective value `ω* = min_k Σ_v c_kv x*_v`.
    pub objective: f64,
    /// Number of simplex pivots used.
    pub pivots: usize,
    /// The optimal simplex basis, reusable as a [`WarmStart`] for re-solving
    /// this instance (or a coefficient-perturbed variant of it).
    pub basis: Vec<usize>,
}

impl MaxMinOptimum {
    /// The optimal basis packaged as a warm start.
    pub fn warm_start(&self) -> WarmStart {
        WarmStart { basis: self.basis.clone() }
    }
}

/// Builds the LP reformulation of `instance`.
///
/// Variable layout: `x_v` for `v = 0..num_agents`, then `ω` as the last
/// variable.
pub fn build_maxmin_lp(instance: &MaxMinInstance) -> LpProblem {
    let n = instance.num_agents();
    let omega = n;
    let mut p = LpProblem::new(n + 1, ObjectiveSense::Maximize);
    p.set_objective(omega, 1.0);
    for i in instance.resource_ids() {
        let coeffs: Vec<(usize, f64)> =
            instance.resource(i).agents.iter().map(|(v, a)| (v.index(), *a)).collect();
        p.add_constraint(LpConstraint::le(coeffs, 1.0));
    }
    for k in instance.party_ids() {
        let mut coeffs: Vec<(usize, f64)> =
            instance.party(k).agents.iter().map(|(v, c)| (v.index(), -*c)).collect();
        coeffs.push((omega, 1.0));
        p.add_constraint(LpConstraint::le(coeffs, 0.0));
    }
    p
}

/// Solves `instance` exactly with the default simplex options.
pub fn solve_maxmin(instance: &MaxMinInstance) -> Result<MaxMinOptimum, LpError> {
    solve_maxmin_with(instance, &SimplexOptions::default())
}

/// Solves `instance` exactly with explicit simplex options.
pub fn solve_maxmin_with(
    instance: &MaxMinInstance,
    options: &SimplexOptions,
) -> Result<MaxMinOptimum, LpError> {
    solve_maxmin_warm(instance, options, None)
}

/// Solves `instance` exactly, optionally warm-starting the simplex from a
/// previously optimal basis (see [`solve_with_warm_start`] for the fallback
/// semantics — an unusable basis is ignored, never an error).
pub fn solve_maxmin_warm(
    instance: &MaxMinInstance,
    options: &SimplexOptions,
    warm: Option<&WarmStart>,
) -> Result<MaxMinOptimum, LpError> {
    let lp = build_maxmin_lp(instance);
    let sol = solve_with_warm_start(&lp, options, warm)?;
    match sol.status {
        LpStatus::Optimal => {}
        // x = 0 is always feasible (all coefficients non-negative) and the
        // objective is bounded by any single resource constraint, so neither
        // of these can occur for a validated instance.
        LpStatus::Infeasible | LpStatus::Unbounded => {
            return Err(LpError::Malformed(format!(
                "max-min reformulation reported {:?} for a validated instance",
                sol.status
            )));
        }
    }
    let n = instance.num_agents();
    let x = Solution::new(sol.x[..n].to_vec());
    // Recompute ω from the activities rather than trusting the LP variable:
    // they agree at the optimum, but the recomputation is what the rest of
    // the code treats as ground truth.
    let objective = instance.objective(&x).map_err(|e| LpError::Malformed(e.to_string()))?;
    Ok(MaxMinOptimum { solution: x, objective, pivots: sol.pivots, basis: sol.basis })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmlp_core::InstanceBuilder;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "expected {b}, got {a}");
    }

    /// One agent, one resource (a_iv = 2), one party (c_kv = 3):
    /// x ≤ 1/2, ω* = 3/2.
    #[test]
    fn single_agent_instance() {
        let mut b = InstanceBuilder::new();
        let v = b.add_agent();
        let i = b.add_resource();
        let k = b.add_party();
        b.set_consumption(i, v, 2.0);
        b.set_benefit(k, v, 3.0);
        let inst = b.build().unwrap();
        let opt = solve_maxmin(&inst).unwrap();
        assert_close(opt.objective, 1.5, 1e-7);
        assert_close(opt.solution.activity(v), 0.5, 1e-7);
        assert!(inst.is_feasible(&opt.solution, 1e-7));
    }

    /// Two agents sharing one unit resource, each serving its own party with
    /// unit benefit: the fair split x = (1/2, 1/2) gives ω* = 1/2.
    #[test]
    fn fair_split_between_two_parties() {
        let mut b = InstanceBuilder::new();
        let v = b.add_agents(2);
        let i = b.add_resource();
        let k0 = b.add_party();
        let k1 = b.add_party();
        b.set_consumption(i, v[0], 1.0);
        b.set_consumption(i, v[1], 1.0);
        b.set_benefit(k0, v[0], 1.0);
        b.set_benefit(k1, v[1], 1.0);
        let inst = b.build().unwrap();
        let opt = solve_maxmin(&inst).unwrap();
        assert_close(opt.objective, 0.5, 1e-7);
        assert_close(opt.solution.activity(v[0]), 0.5, 1e-7);
        assert_close(opt.solution.activity(v[1]), 0.5, 1e-7);
    }

    /// Asymmetric benefits: party 0 is served only by the "weak" agent, so the
    /// optimum shifts capacity towards it.
    ///
    /// max min(x0, 3·x1) with x0 + x1 ≤ 1 → x0 = 3/4, x1 = 1/4, ω* = 3/4.
    #[test]
    fn asymmetric_benefits() {
        let mut b = InstanceBuilder::new();
        let v = b.add_agents(2);
        let i = b.add_resource();
        let k0 = b.add_party();
        let k1 = b.add_party();
        b.set_consumption(i, v[0], 1.0);
        b.set_consumption(i, v[1], 1.0);
        b.set_benefit(k0, v[0], 1.0);
        b.set_benefit(k1, v[1], 3.0);
        let inst = b.build().unwrap();
        let opt = solve_maxmin(&inst).unwrap();
        assert_close(opt.objective, 0.75, 1e-7);
        assert_close(opt.solution.activity(v[0]), 0.75, 1e-7);
        assert_close(opt.solution.activity(v[1]), 0.25, 1e-7);
    }

    /// The packing-LP special case |K| = 1: max Σ x_v subject to the
    /// constraints; here a single resource shared by 3 agents gives ω* = 1.
    #[test]
    fn packing_special_case() {
        let mut b = InstanceBuilder::new();
        let v = b.add_agents(3);
        let i = b.add_resource();
        let k = b.add_party();
        for &vv in &v {
            b.set_consumption(i, vv, 1.0);
            b.set_benefit(k, vv, 1.0);
        }
        let inst = b.build().unwrap();
        let opt = solve_maxmin(&inst).unwrap();
        assert_close(opt.objective, 1.0, 1e-7);
    }

    /// A chain where the middle agent is shared: the LP must trade off its two
    /// resources.  Instance: agents v0, v1; resources i0 ∋ {v0, v1}, i1 ∋ {v1};
    /// parties k0 ← v0, k1 ← v1.  ω* = 1/2 again but through two constraints.
    #[test]
    fn chain_with_extra_resource() {
        let mut b = InstanceBuilder::new();
        let v = b.add_agents(2);
        let i0 = b.add_resource();
        let i1 = b.add_resource();
        let k0 = b.add_party();
        let k1 = b.add_party();
        b.set_consumption(i0, v[0], 1.0);
        b.set_consumption(i0, v[1], 1.0);
        b.set_consumption(i1, v[1], 1.0);
        b.set_benefit(k0, v[0], 1.0);
        b.set_benefit(k1, v[1], 1.0);
        let inst = b.build().unwrap();
        let opt = solve_maxmin(&inst).unwrap();
        assert_close(opt.objective, 0.5, 1e-7);
        assert!(inst.is_feasible(&opt.solution, 1e-7));
    }

    #[test]
    fn lp_layout_matches_instance() {
        let mut b = InstanceBuilder::new();
        let v = b.add_agents(2);
        let i = b.add_resource();
        let k = b.add_party();
        b.set_consumption(i, v[0], 1.0);
        b.set_consumption(i, v[1], 2.0);
        b.set_benefit(k, v[0], 3.0);
        let inst = b.build().unwrap();
        let lp = build_maxmin_lp(&inst);
        assert_eq!(lp.num_vars, 3); // x0, x1, ω
        assert_eq!(lp.num_constraints(), 2); // one resource + one party
        assert_eq!(lp.objective, vec![0.0, 0.0, 1.0]);
    }

    #[test]
    fn optimum_dominates_every_feasible_point_we_try() {
        // ω* must be at least the objective of the uniform feasible solution.
        let mut b = InstanceBuilder::new();
        let v = b.add_agents(4);
        let k = b.add_party_with(&[(v[0], 1.0), (v[2], 1.0)]);
        let k2 = b.add_party_with(&[(v[1], 1.0), (v[3], 2.0)]);
        for &vv in &v {
            let i = b.add_resource();
            b.set_consumption(i, vv, 1.0);
        }
        let i_shared = b.add_resource();
        b.set_consumption(i_shared, v[0], 0.5);
        b.set_consumption(i_shared, v[3], 0.5);
        let _ = (k, k2);
        let inst = b.build().unwrap();
        let opt = solve_maxmin(&inst).unwrap();
        let uniform = Solution::constant(4, 0.5);
        assert!(inst.is_feasible(&uniform, 1e-9));
        assert!(opt.objective >= inst.objective(&uniform).unwrap() - 1e-9);
    }
}
