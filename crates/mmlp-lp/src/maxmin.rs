//! Reformulation of a max-min LP as an ordinary LP and its exact solution.
//!
//! Section 1.3 of the paper: introduce the auxiliary variable `ω` and solve
//!
//! ```text
//! maximise ω
//! subject to  A x ≤ 1
//!             ω·1 − C x ≤ 0
//!             x ≥ 0, ω ≥ 0
//! ```
//!
//! (`ω ≥ 0` is without loss of generality because all coefficients are
//! non-negative, so `x = 0, ω = 0` is always feasible.)  The optimum of this
//! LP is the global optimum `ω*` that local algorithms are compared against.

use crate::problem::{LpConstraint, LpError, LpProblem, ObjectiveSense};
use crate::simplex::{
    resolve_from_basis, solve_with, try_dual_warm_solve, try_warm_solve, LpSolution, LpStatus,
    SimplexOptions, WarmStart,
};
use mmlp_core::{MaxMinInstance, Solution};

/// The exact optimum of a max-min LP, produced by the centralised simplex
/// baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct MaxMinOptimum {
    /// An optimal activity vector `x*`.
    pub solution: Solution,
    /// The optimal objective value `ω* = min_k Σ_v c_kv x*_v`.
    pub objective: f64,
    /// Number of simplex iterations used (including any rejected seeded
    /// attempt; basis installations are counted in
    /// [`installs`](MaxMinOptimum::installs)).
    pub pivots: usize,
    /// Gauss–Jordan eliminations spent installing bases: seed installation
    /// and the canonical resolution of the final basis.
    pub installs: usize,
    /// The optimal simplex basis, reusable as a [`WarmStart`] for re-solving
    /// this instance (or a coefficient-perturbed variant of it).
    pub basis: Vec<usize>,
}

impl MaxMinOptimum {
    /// The optimal basis packaged as a warm start.
    pub fn warm_start(&self) -> WarmStart {
        WarmStart { basis: self.basis.clone() }
    }
}

/// Builds the LP reformulation of `instance`.
///
/// Variable layout: `x_v` for `v = 0..num_agents`, then `ω` as the last
/// variable.
pub fn build_maxmin_lp(instance: &MaxMinInstance) -> LpProblem {
    let n = instance.num_agents();
    let omega = n;
    let mut p = LpProblem::new(n + 1, ObjectiveSense::Maximize);
    p.set_objective(omega, 1.0);
    for i in instance.resource_ids() {
        let coeffs: Vec<(usize, f64)> =
            instance.resource(i).agents.iter().map(|(v, a)| (v.index(), *a)).collect();
        p.add_constraint(LpConstraint::le(coeffs, 1.0));
    }
    for k in instance.party_ids() {
        let mut coeffs: Vec<(usize, f64)> =
            instance.party(k).agents.iter().map(|(v, c)| (v.index(), -*c)).collect();
        coeffs.push((omega, 1.0));
        p.add_constraint(LpConstraint::le(coeffs, 0.0));
    }
    p
}

/// Solves `instance` exactly with the default simplex options.
pub fn solve_maxmin(instance: &MaxMinInstance) -> Result<MaxMinOptimum, LpError> {
    solve_maxmin_with(instance, &SimplexOptions::default())
}

/// Solves `instance` exactly with explicit simplex options.
pub fn solve_maxmin_with(
    instance: &MaxMinInstance,
    options: &SimplexOptions,
) -> Result<MaxMinOptimum, LpError> {
    solve_maxmin_warm(instance, options, None)
}

/// Solves `instance` exactly, optionally warm-starting the simplex from a
/// previously optimal basis (an unusable basis is ignored, never an error).
///
/// Equivalent to [`solve_maxmin_seeded`] without the report.  A seeded solve
/// can **never** change the returned numbers relative to the cold solve:
/// a warm result is only kept when its uniqueness certificate proves the
/// cold path would have terminated at the same basis (see
/// [`resolve_from_basis`]); otherwise the cold solve runs and its result is
/// returned.
pub fn solve_maxmin_warm(
    instance: &MaxMinInstance,
    options: &SimplexOptions,
    warm: Option<&WarmStart>,
) -> Result<MaxMinOptimum, LpError> {
    solve_maxmin_seeded(instance, options, warm).map(|(opt, _)| opt)
}

/// How far a seeded max-min solve got before acceptance or fallback.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SeedOutcome {
    /// No seed basis was supplied.
    #[default]
    NotAttempted,
    /// The seed basis could not be installed for this LP (wrong cardinality,
    /// singular, or primal infeasible here).
    InstallFailed,
    /// The seeded phase 2 did not reach an optimal status.
    NotOptimal,
    /// The warm-final basis could not be canonically re-resolved.
    ResolveFailed,
    /// The resolution succeeded but the LP has alternative optima or a
    /// degenerate optimal basis, so cold-path equality cannot be certified.
    NotCertified,
    /// The warm result was accepted: certified bit-identical to cold.
    Accepted,
}

/// What a seeded (warm-start-capable) max-min solve did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SeededSolveReport {
    /// Whether a seed basis was supplied and its installation attempted.
    pub warm_attempted: bool,
    /// Whether the warm result was accepted (certificate held); `false`
    /// means the cold path produced the returned numbers.
    pub warm_accepted: bool,
    /// How far the seeded attempt got.
    pub outcome: SeedOutcome,
}

/// How much the caller vouches for a seed basis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SeedTrust {
    /// The seed comes from a structurally *similar* problem: acceptance
    /// requires the solution-uniqueness certificate.
    Similar,
    /// The seed was recorded by a previous (deterministic) cold solve of
    /// **this very LP**: acceptance requires only that the seeded phase 2
    /// terminates immediately at the seeded basis set — that basis then *is*
    /// the cold path's final basis, so resolving from it reproduces the cold
    /// numbers without any uniqueness assumption.
    Exact,
}

/// Solves `instance` exactly, optionally seeding the simplex from another
/// (structurally similar) problem's optimal basis, and reports what the
/// warm-start machinery did.
///
/// The returned numbers are **bit-identical to the unseeded solve** by
/// construction:
///
/// 1. every solve — seeded or cold — re-derives its activity vector from the
///    final basis via [`resolve_from_basis`], so `x` depends only on the
///    basis *set*, not on the pivot path that found it (the resolution is
///    paid unconditionally, cold path included, precisely so that every
///    execution path computes the same function of the final basis);
/// 2. a seeded result is accepted only when the resolution's uniqueness
///    certificate holds, i.e. the optimal activity vector is provably
///    unique — in which case both paths resolve it through the same
///    canonical vertex basis;
/// 3. in every other case the solver falls back to the cold path.
///
/// [`MaxMinOptimum::pivots`] honestly accounts for all simplex iterations
/// performed, including rejected warm attempts;
/// [`MaxMinOptimum::installs`] accounts for the basis-installation
/// eliminations of seeding and resolution.
pub fn solve_maxmin_seeded(
    instance: &MaxMinInstance,
    options: &SimplexOptions,
    seed: Option<&WarmStart>,
) -> Result<(MaxMinOptimum, SeededSolveReport), LpError> {
    solve_maxmin_trusted(instance, options, seed, SeedTrust::Similar)
}

/// Solves `instance` exactly, seeding the simplex from a basis **recorded by
/// a previous solve of this very instance** (e.g. the engine's cross-run
/// class cache, whose entries are keyed by exact canonical encodings).
///
/// Because the cold solve is deterministic, a basis recorded by it is *the*
/// basis the cold path terminates at.  The seeded attempt is therefore
/// accepted — with zero simplex iterations — exactly when phase 2 confirms
/// the seeded basis is optimal as-is; no solution-uniqueness certificate is
/// needed, because both paths resolve the same basis set.  A seed that is
/// not optimal here (stale after an instance update, truncated, infeasible)
/// fails that check and falls back to the cold path.
///
/// **Precondition:** the caller vouches that `seed` really was recorded by
/// a previous deterministic solve of this instance — that is what the
/// bit-identity argument rests on.  Handing this function some *other*
/// optimal basis of an LP with several optima returns that basis's (still
/// optimal) vertex, which may differ from the cold solve's; use
/// [`solve_maxmin_seeded`], whose certificate gate handles arbitrary seeds,
/// when the provenance of the basis is not known.
pub fn solve_maxmin_resumed(
    instance: &MaxMinInstance,
    options: &SimplexOptions,
    seed: &WarmStart,
) -> Result<(MaxMinOptimum, SeededSolveReport), LpError> {
    solve_maxmin_trusted(instance, options, Some(seed), SeedTrust::Exact)
}

/// Solves `instance` exactly, restarting the simplex **through a dual-simplex
/// phase** from a basis recorded before a weight perturbation.
///
/// After the consumption/benefit coefficients of an instance drift, its old
/// optimal basis usually re-installs *primal infeasible* — which makes every
/// primal warm start ([`solve_maxmin_seeded`], [`solve_maxmin_resumed`])
/// reject it unexamined — while remaining *dual* feasible, because the
/// reformulation's objective (`maximise ω`) never changes.  This entry point
/// hands such a basis to [`try_dual_warm_solve`], which restores primal
/// feasibility by dual pivots instead of re-running phase 1 from scratch.
///
/// The gate discipline is exactly the primal seeded path's: a dual-repaired
/// optimum is accepted only when [`resolve_from_basis`]'s solution-uniqueness
/// certificate holds (both paths then resolve the same canonical vertex
/// basis), and every other outcome falls back to the cold two-phase solve —
/// so the returned numbers are **bit-identical to the cold solve** by
/// construction, whichever path produced them.
pub fn solve_maxmin_dual_resumed(
    instance: &MaxMinInstance,
    options: &SimplexOptions,
    seed: &WarmStart,
) -> Result<(MaxMinOptimum, SeededSolveReport), LpError> {
    let lp = build_maxmin_lp(instance);
    let mut report = SeededSolveReport {
        warm_attempted: true,
        warm_accepted: false,
        outcome: SeedOutcome::InstallFailed,
    };
    let mut pivots = 0usize;
    let mut installs = 0usize;
    let probe = try_dual_warm_solve(&lp, options, seed)?;
    installs += probe.wasted_installs;
    pivots += probe.wasted_pivots;
    if probe.wasted_pivots > 0 {
        report.outcome = SeedOutcome::NotOptimal;
    }
    if let Some(sol) = probe.solution {
        pivots += sol.pivots;
        installs += sol.installs;
        report.outcome = SeedOutcome::NotOptimal;
        if sol.status == LpStatus::Optimal {
            report.outcome = SeedOutcome::ResolveFailed;
            if let Some(res) = resolve_from_basis(&lp, options, &sol.basis)? {
                installs += res.installs;
                report.outcome = SeedOutcome::NotCertified;
                if res.certified {
                    report.warm_accepted = true;
                    report.outcome = SeedOutcome::Accepted;
                    return Ok((finish(instance, res.x, sol.basis, pivots, installs)?, report));
                }
            }
        }
    }
    cold_tail(instance, &lp, options, pivots, installs, report)
}

fn solve_maxmin_trusted(
    instance: &MaxMinInstance,
    options: &SimplexOptions,
    seed: Option<&WarmStart>,
    trust: SeedTrust,
) -> Result<(MaxMinOptimum, SeededSolveReport), LpError> {
    let lp = build_maxmin_lp(instance);
    let mut report = SeededSolveReport::default();
    let mut pivots = 0usize;
    let mut installs = 0usize;
    if let Some(ws) = seed {
        report.warm_attempted = true;
        report.outcome = SeedOutcome::InstallFailed;
        // A seeded attempt that burns through the pivot budget is reported
        // by the probe as a rejection, not an error: the cold path may well
        // finish within the same budget, and enabling warm starts must
        // never turn a solvable instance into an error.
        let probe = try_warm_solve(&lp, options, ws)?;
        installs += probe.wasted_installs;
        pivots += probe.wasted_pivots;
        if probe.wasted_pivots > 0 {
            report.outcome = SeedOutcome::NotOptimal;
        }
        if let Some(sol) = probe.solution {
            pivots += sol.pivots;
            installs += sol.installs;
            report.outcome = SeedOutcome::NotOptimal;
            if sol.status == LpStatus::Optimal {
                let equal_cold = match trust {
                    SeedTrust::Similar => false,
                    // The exactness gate: phase 2 terminated without a
                    // single pivot at the seeded basis set, which a
                    // deterministic donor recorded as this LP's cold final
                    // basis.
                    SeedTrust::Exact => sol.pivots == 0 && same_basis_set(&sol.basis, &ws.basis),
                };
                report.outcome = SeedOutcome::NotCertified;
                if equal_cold || trust == SeedTrust::Similar {
                    report.outcome = SeedOutcome::ResolveFailed;
                    if let Some(res) = resolve_from_basis(&lp, options, &sol.basis)? {
                        installs += res.installs;
                        report.outcome = SeedOutcome::NotCertified;
                        if equal_cold || res.certified {
                            report.warm_accepted = true;
                            report.outcome = SeedOutcome::Accepted;
                            return Ok((
                                finish(instance, res.x, sol.basis, pivots, installs)?,
                                report,
                            ));
                        }
                    }
                }
            }
        }
    }
    cold_tail(instance, &lp, options, pivots, installs, report)
}

/// The cold two-phase solve every seeded path falls back to, with the
/// seeded attempt's wasted work carried into the returned accounting.
fn cold_tail(
    instance: &MaxMinInstance,
    lp: &LpProblem,
    options: &SimplexOptions,
    mut pivots: usize,
    mut installs: usize,
    report: SeededSolveReport,
) -> Result<(MaxMinOptimum, SeededSolveReport), LpError> {
    let sol = solve_with(lp, options)?;
    pivots += sol.pivots;
    installs += sol.installs;
    check_status(&sol)?;
    let LpSolution { x, basis, .. } = sol;
    let x = match resolve_from_basis(lp, options, &basis)? {
        Some(res) => {
            installs += res.installs;
            res.x
        }
        // The basis could not be canonically re-installed (numerically
        // borderline); keep the cold tableau's solution, which is itself a
        // deterministic function of the problem.
        None => x,
    };
    Ok((finish(instance, x, basis, pivots, installs)?, report))
}

/// Whether two bases contain the same column *set*.
fn same_basis_set(a: &[usize], b: &[usize]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut a = a.to_vec();
    let mut b = b.to_vec();
    a.sort_unstable();
    b.sort_unstable();
    a == b
}

fn check_status(sol: &LpSolution) -> Result<(), LpError> {
    match sol.status {
        LpStatus::Optimal => Ok(()),
        // x = 0 is always feasible (all coefficients non-negative) and the
        // objective is bounded by any single resource constraint, so neither
        // of these can occur for a validated instance.
        LpStatus::Infeasible | LpStatus::Unbounded => Err(LpError::Malformed(format!(
            "max-min reformulation reported {:?} for a validated instance",
            sol.status
        ))),
    }
}

fn finish(
    instance: &MaxMinInstance,
    x_full: Vec<f64>,
    basis: Vec<usize>,
    pivots: usize,
    installs: usize,
) -> Result<MaxMinOptimum, LpError> {
    let n = instance.num_agents();
    let x = Solution::new(x_full[..n].to_vec());
    // Recompute ω from the activities rather than trusting the LP variable:
    // they agree at the optimum, but the recomputation is what the rest of
    // the code treats as ground truth.
    let objective = instance.objective(&x).map_err(|e| LpError::Malformed(e.to_string()))?;
    Ok(MaxMinOptimum { solution: x, objective, pivots, installs, basis })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmlp_core::InstanceBuilder;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "expected {b}, got {a}");
    }

    /// One agent, one resource (a_iv = 2), one party (c_kv = 3):
    /// x ≤ 1/2, ω* = 3/2.
    #[test]
    fn single_agent_instance() {
        let mut b = InstanceBuilder::new();
        let v = b.add_agent();
        let i = b.add_resource();
        let k = b.add_party();
        b.set_consumption(i, v, 2.0);
        b.set_benefit(k, v, 3.0);
        let inst = b.build().unwrap();
        let opt = solve_maxmin(&inst).unwrap();
        assert_close(opt.objective, 1.5, 1e-7);
        assert_close(opt.solution.activity(v), 0.5, 1e-7);
        assert!(inst.is_feasible(&opt.solution, 1e-7));
    }

    /// Two agents sharing one unit resource, each serving its own party with
    /// unit benefit: the fair split x = (1/2, 1/2) gives ω* = 1/2.
    #[test]
    fn fair_split_between_two_parties() {
        let mut b = InstanceBuilder::new();
        let v = b.add_agents(2);
        let i = b.add_resource();
        let k0 = b.add_party();
        let k1 = b.add_party();
        b.set_consumption(i, v[0], 1.0);
        b.set_consumption(i, v[1], 1.0);
        b.set_benefit(k0, v[0], 1.0);
        b.set_benefit(k1, v[1], 1.0);
        let inst = b.build().unwrap();
        let opt = solve_maxmin(&inst).unwrap();
        assert_close(opt.objective, 0.5, 1e-7);
        assert_close(opt.solution.activity(v[0]), 0.5, 1e-7);
        assert_close(opt.solution.activity(v[1]), 0.5, 1e-7);
    }

    /// Asymmetric benefits: party 0 is served only by the "weak" agent, so the
    /// optimum shifts capacity towards it.
    ///
    /// max min(x0, 3·x1) with x0 + x1 ≤ 1 → x0 = 3/4, x1 = 1/4, ω* = 3/4.
    #[test]
    fn asymmetric_benefits() {
        let mut b = InstanceBuilder::new();
        let v = b.add_agents(2);
        let i = b.add_resource();
        let k0 = b.add_party();
        let k1 = b.add_party();
        b.set_consumption(i, v[0], 1.0);
        b.set_consumption(i, v[1], 1.0);
        b.set_benefit(k0, v[0], 1.0);
        b.set_benefit(k1, v[1], 3.0);
        let inst = b.build().unwrap();
        let opt = solve_maxmin(&inst).unwrap();
        assert_close(opt.objective, 0.75, 1e-7);
        assert_close(opt.solution.activity(v[0]), 0.75, 1e-7);
        assert_close(opt.solution.activity(v[1]), 0.25, 1e-7);
    }

    /// The packing-LP special case |K| = 1: max Σ x_v subject to the
    /// constraints; here a single resource shared by 3 agents gives ω* = 1.
    #[test]
    fn packing_special_case() {
        let mut b = InstanceBuilder::new();
        let v = b.add_agents(3);
        let i = b.add_resource();
        let k = b.add_party();
        for &vv in &v {
            b.set_consumption(i, vv, 1.0);
            b.set_benefit(k, vv, 1.0);
        }
        let inst = b.build().unwrap();
        let opt = solve_maxmin(&inst).unwrap();
        assert_close(opt.objective, 1.0, 1e-7);
    }

    /// A chain where the middle agent is shared: the LP must trade off its two
    /// resources.  Instance: agents v0, v1; resources i0 ∋ {v0, v1}, i1 ∋ {v1};
    /// parties k0 ← v0, k1 ← v1.  ω* = 1/2 again but through two constraints.
    #[test]
    fn chain_with_extra_resource() {
        let mut b = InstanceBuilder::new();
        let v = b.add_agents(2);
        let i0 = b.add_resource();
        let i1 = b.add_resource();
        let k0 = b.add_party();
        let k1 = b.add_party();
        b.set_consumption(i0, v[0], 1.0);
        b.set_consumption(i0, v[1], 1.0);
        b.set_consumption(i1, v[1], 1.0);
        b.set_benefit(k0, v[0], 1.0);
        b.set_benefit(k1, v[1], 1.0);
        let inst = b.build().unwrap();
        let opt = solve_maxmin(&inst).unwrap();
        assert_close(opt.objective, 0.5, 1e-7);
        assert!(inst.is_feasible(&opt.solution, 1e-7));
    }

    #[test]
    fn lp_layout_matches_instance() {
        let mut b = InstanceBuilder::new();
        let v = b.add_agents(2);
        let i = b.add_resource();
        let k = b.add_party();
        b.set_consumption(i, v[0], 1.0);
        b.set_consumption(i, v[1], 2.0);
        b.set_benefit(k, v[0], 3.0);
        let inst = b.build().unwrap();
        let lp = build_maxmin_lp(&inst);
        assert_eq!(lp.num_vars, 3); // x0, x1, ω
        assert_eq!(lp.num_constraints(), 2); // one resource + one party
        assert_eq!(lp.objective, vec![0.0, 0.0, 1.0]);
    }

    /// A small asymmetric instance with a unique nondegenerate optimum.
    fn asymmetric_instance(benefit: f64) -> crate::maxmin::MaxMinInstance {
        let mut b = InstanceBuilder::new();
        let v = b.add_agents(2);
        let i = b.add_resource();
        let k0 = b.add_party();
        let k1 = b.add_party();
        b.set_consumption(i, v[0], 1.0);
        b.set_consumption(i, v[1], 1.0);
        b.set_benefit(k0, v[0], 1.0);
        b.set_benefit(k1, v[1], benefit);
        b.build().unwrap()
    }

    #[test]
    fn seeded_solve_is_bit_identical_to_cold_solve() {
        let opts = SimplexOptions::default();
        let donor = solve_maxmin(&asymmetric_instance(3.0)).unwrap();
        // A *different* (perturbed) instance, seeded from the donor's basis.
        let inst = asymmetric_instance(2.5);
        let cold = solve_maxmin(&inst).unwrap();
        let (seeded, report) =
            solve_maxmin_seeded(&inst, &opts, Some(&donor.warm_start())).unwrap();
        assert!(report.warm_attempted);
        // Accepted or not, the numbers must be exactly the cold numbers.
        assert_eq!(seeded.solution, cold.solution);
        assert_eq!(seeded.objective.to_bits(), cold.objective.to_bits());
    }

    #[test]
    fn seeded_solve_accepts_its_own_basis() {
        let inst = asymmetric_instance(3.0);
        let opts = SimplexOptions::default();
        let cold = solve_maxmin(&inst).unwrap();
        let (warm, report) = solve_maxmin_seeded(&inst, &opts, Some(&cold.warm_start())).unwrap();
        assert!(report.warm_attempted && report.warm_accepted);
        assert_eq!(warm.solution, cold.solution);
        // Re-solving from the optimal basis pays only the installation and
        // resolution eliminations — never more than the cold solve.
        assert!(warm.pivots <= cold.pivots, "warm {} vs cold {}", warm.pivots, cold.pivots);
    }

    #[test]
    fn seeded_solve_rejects_seeds_on_ambiguous_optima() {
        // Three agents sharing one resource, one party covering all of them:
        // the optimal face is two-dimensional, so no warm result may be
        // accepted and the cold numbers must come back.
        let mut b = InstanceBuilder::new();
        let v = b.add_agents(3);
        let i = b.add_resource();
        let k = b.add_party();
        for &vv in &v {
            b.set_consumption(i, vv, 1.0);
            b.set_benefit(k, vv, 1.0);
        }
        let inst = b.build().unwrap();
        let opts = SimplexOptions::default();
        let cold = solve_maxmin(&inst).unwrap();
        let (seeded, report) = solve_maxmin_seeded(&inst, &opts, Some(&cold.warm_start())).unwrap();
        assert!(report.warm_attempted && !report.warm_accepted);
        assert_eq!(seeded.solution, cold.solution);
    }

    #[test]
    fn garbage_seeds_never_change_the_result() {
        let inst = asymmetric_instance(3.0);
        let opts = SimplexOptions::default();
        let cold = solve_maxmin(&inst).unwrap();
        for basis in [vec![], vec![0, 0], vec![999, 1000, 1001], vec![0]] {
            let (seeded, report) =
                solve_maxmin_seeded(&inst, &opts, Some(&WarmStart { basis })).unwrap();
            assert!(report.warm_attempted);
            assert_eq!(seeded.solution, cold.solution);
        }
    }

    #[test]
    fn seeding_never_errors_when_the_cold_solve_fits_the_pivot_budget() {
        // The documented invariant: enabling warm starts can change the work
        // but never the outcome — including when the pivot budget is tuned
        // to exactly what the cold solve needs and a useless seed would
        // otherwise burn it.
        let inst = asymmetric_instance(3.0);
        let cold = solve_maxmin(&inst).unwrap();
        let opts = SimplexOptions { max_pivots: cold.pivots.max(1), ..SimplexOptions::default() };
        let cold_budgeted = solve_maxmin_with(&inst, &opts).unwrap();
        for basis in [vec![], vec![0], vec![0, 1], vec![1, 2], vec![999, 1000]] {
            let (seeded, _) =
                solve_maxmin_seeded(&inst, &opts, Some(&WarmStart { basis })).unwrap();
            assert_eq!(seeded.solution, cold_budgeted.solution);
        }
    }

    #[test]
    fn resumed_solve_accepts_the_recorded_basis_with_zero_pivots() {
        let inst = asymmetric_instance(3.0);
        let opts = SimplexOptions::default();
        let cold = solve_maxmin(&inst).unwrap();
        let (resumed, report) = solve_maxmin_resumed(&inst, &opts, &cold.warm_start()).unwrap();
        assert!(report.warm_accepted);
        assert_eq!(resumed.pivots, 0);
        assert_eq!(resumed.solution, cold.solution);
        assert_eq!(resumed.objective.to_bits(), cold.objective.to_bits());
    }

    #[test]
    fn resumed_solve_rejects_stale_bases() {
        // A basis recorded for a *different* instance is not optimal here:
        // the exactness gate must fall back to the cold numbers.
        let donor = solve_maxmin(&asymmetric_instance(3.0)).unwrap();
        let inst = asymmetric_instance(2.5);
        let opts = SimplexOptions::default();
        let cold = solve_maxmin(&inst).unwrap();
        let (resumed, _) = solve_maxmin_resumed(&inst, &opts, &donor.warm_start()).unwrap();
        assert_eq!(resumed.solution, cold.solution);
        for basis in [vec![], vec![0, 0], vec![999, 1000, 1001]] {
            let (resumed, report) =
                solve_maxmin_resumed(&inst, &opts, &WarmStart { basis }).unwrap();
            assert!(!report.warm_accepted);
            assert_eq!(resumed.solution, cold.solution);
        }
    }

    /// Two agents, two resources; resource `i1` covers **both** agents with
    /// weights `(a0, a1)`.  Both parties bind at every optimum, so the
    /// binding resource pins the whole activity vector and the optimum stays
    /// unique (certifiable) across the sweep — while growing the weights
    /// past the old vertex's usage makes the recorded basis primal
    /// infeasible without touching the objective row (ω), which is what
    /// keeps it dual feasible.
    fn two_resource_instance(a0: f64, a1: f64) -> crate::maxmin::MaxMinInstance {
        let mut b = InstanceBuilder::new();
        let v = b.add_agents(2);
        let i0 = b.add_resource();
        let i1 = b.add_resource();
        let k0 = b.add_party();
        let k1 = b.add_party();
        b.set_consumption(i0, v[0], 1.0);
        b.set_consumption(i0, v[1], 1.0);
        b.set_consumption(i1, v[0], a0);
        b.set_consumption(i1, v[1], a1);
        b.set_benefit(k0, v[0], 1.0);
        b.set_benefit(k1, v[1], 3.0);
        b.build().unwrap()
    }

    #[test]
    fn dual_resumed_solve_repairs_a_perturbed_basis_bit_identically() {
        // At (0.5, 0.5) the optimum is x = (3/4, 1/4) with resource i1
        // slack (usage 1/2); at (1.2, 1.1) the old vertex would use
        // 0.9 + 0.275 > 1, so the recorded basis is primal infeasible and
        // only the dual phase can start from it.  The new optimum binds i1
        // instead of i0 — a genuinely different basis, reached by dual
        // pivots — and is unique, so the certificate accepts.
        let opts = SimplexOptions::default();
        let donor = solve_maxmin(&two_resource_instance(0.5, 0.5)).unwrap();
        let inst = two_resource_instance(1.2, 1.1);
        let cold = solve_maxmin(&inst).unwrap();
        // The primal seeded path cannot install this basis…
        let (_, primal_report) =
            solve_maxmin_seeded(&inst, &opts, Some(&donor.warm_start())).unwrap();
        assert_eq!(primal_report.outcome, SeedOutcome::InstallFailed);
        // …while the dual path accepts it and still returns the cold bits.
        let (dual, report) = solve_maxmin_dual_resumed(&inst, &opts, &donor.warm_start()).unwrap();
        assert_eq!(report.outcome, SeedOutcome::Accepted);
        assert!(report.warm_attempted && report.warm_accepted);
        assert_eq!(dual.solution, cold.solution);
        assert_eq!(dual.objective.to_bits(), cold.objective.to_bits());
    }

    #[test]
    fn dual_resumed_solve_handles_coefficient_drift_of_any_size() {
        // Sweep perturbations from none to basis-changing: accepted or not,
        // the numbers must always be exactly the cold numbers.
        let opts = SimplexOptions::default();
        let donor = solve_maxmin(&two_resource_instance(0.5, 0.5)).unwrap();
        for (a0, a1) in [(0.5, 0.5), (0.501, 0.5), (0.9, 1.0), (1.2, 1.1), (5.0, 0.1), (50.0, 7.0)]
        {
            let inst = two_resource_instance(a0, a1);
            let cold = solve_maxmin(&inst).unwrap();
            let (dual, _) = solve_maxmin_dual_resumed(&inst, &opts, &donor.warm_start()).unwrap();
            assert_eq!(dual.solution, cold.solution, "a = ({a0}, {a1})");
            assert_eq!(dual.objective.to_bits(), cold.objective.to_bits(), "a = ({a0}, {a1})");
        }
    }

    #[test]
    fn dual_resumed_solve_falls_back_on_garbage_seeds() {
        let inst = two_resource_instance(1.2, 1.1);
        let opts = SimplexOptions::default();
        let cold = solve_maxmin(&inst).unwrap();
        for basis in [vec![], vec![0, 0], vec![999, 1000, 1001], vec![0]] {
            let (dual, report) =
                solve_maxmin_dual_resumed(&inst, &opts, &WarmStart { basis }).unwrap();
            assert!(!report.warm_accepted);
            assert_eq!(dual.solution, cold.solution);
        }
    }

    #[test]
    fn optimum_dominates_every_feasible_point_we_try() {
        // ω* must be at least the objective of the uniform feasible solution.
        let mut b = InstanceBuilder::new();
        let v = b.add_agents(4);
        let k = b.add_party_with(&[(v[0], 1.0), (v[2], 1.0)]);
        let k2 = b.add_party_with(&[(v[1], 1.0), (v[3], 2.0)]);
        for &vv in &v {
            let i = b.add_resource();
            b.set_consumption(i, vv, 1.0);
        }
        let i_shared = b.add_resource();
        b.set_consumption(i_shared, v[0], 0.5);
        b.set_consumption(i_shared, v[3], 0.5);
        let _ = (k, k2);
        let inst = b.build().unwrap();
        let opt = solve_maxmin(&inst).unwrap();
        let uniform = Solution::constant(4, 0.5);
        assert!(inst.is_feasible(&uniform, 1e-9));
        assert!(opt.objective >= inst.objective(&uniform).unwrap() - 1e-9);
    }
}
