//! Problem description types for the LP solver.

use std::fmt;

/// Direction of optimisation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObjectiveSense {
    /// Maximise the objective.
    Maximize,
    /// Minimise the objective.
    Minimize,
}

/// Relational operator of a linear constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConstraintOp {
    /// `Σ a_j x_j ≤ rhs`
    Le,
    /// `Σ a_j x_j ≥ rhs`
    Ge,
    /// `Σ a_j x_j = rhs`
    Eq,
}

/// One linear constraint, with a sparse coefficient list.
#[derive(Debug, Clone, PartialEq)]
pub struct LpConstraint {
    /// Sparse coefficients `(variable index, coefficient)`.
    pub coeffs: Vec<(usize, f64)>,
    /// Relational operator.
    pub op: ConstraintOp,
    /// Right-hand side.
    pub rhs: f64,
}

impl LpConstraint {
    /// Creates a `≤` constraint.
    pub fn le(coeffs: Vec<(usize, f64)>, rhs: f64) -> Self {
        Self { coeffs, op: ConstraintOp::Le, rhs }
    }

    /// Creates a `≥` constraint.
    pub fn ge(coeffs: Vec<(usize, f64)>, rhs: f64) -> Self {
        Self { coeffs, op: ConstraintOp::Ge, rhs }
    }

    /// Creates an `=` constraint.
    pub fn eq(coeffs: Vec<(usize, f64)>, rhs: f64) -> Self {
        Self { coeffs, op: ConstraintOp::Eq, rhs }
    }

    /// Evaluates the left-hand side at `x`.
    pub fn lhs_value(&self, x: &[f64]) -> f64 {
        self.coeffs.iter().map(|(j, a)| a * x[*j]).sum()
    }

    /// `true` iff the constraint is satisfied at `x` up to tolerance `tol`.
    pub fn is_satisfied(&self, x: &[f64], tol: f64) -> bool {
        let lhs = self.lhs_value(x);
        match self.op {
            ConstraintOp::Le => lhs <= self.rhs + tol,
            ConstraintOp::Ge => lhs >= self.rhs - tol,
            ConstraintOp::Eq => (lhs - self.rhs).abs() <= tol,
        }
    }
}

/// A linear program over non-negative variables `x_0, …, x_{n−1} ≥ 0`.
///
/// General variable bounds are not needed by this repository: every variable
/// of the paper's LPs (the activities `x_v` and the objective value `ω`) is
/// naturally non-negative because all coefficients are non-negative.
#[derive(Debug, Clone, PartialEq)]
pub struct LpProblem {
    /// Number of decision variables.
    pub num_vars: usize,
    /// Dense objective coefficient vector (length `num_vars`).
    pub objective: Vec<f64>,
    /// Optimisation direction.
    pub sense: ObjectiveSense,
    /// The constraints.
    pub constraints: Vec<LpConstraint>,
}

impl LpProblem {
    /// Creates a problem with the given number of variables, zero objective
    /// and no constraints.
    pub fn new(num_vars: usize, sense: ObjectiveSense) -> Self {
        Self { num_vars, objective: vec![0.0; num_vars], sense, constraints: Vec::new() }
    }

    /// Sets a single objective coefficient.
    pub fn set_objective(&mut self, var: usize, coeff: f64) -> &mut Self {
        self.objective[var] = coeff;
        self
    }

    /// Adds a constraint.
    pub fn add_constraint(&mut self, c: LpConstraint) -> &mut Self {
        self.constraints.push(c);
        self
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Objective value at `x`.
    pub fn objective_value(&self, x: &[f64]) -> f64 {
        self.objective.iter().zip(x).map(|(c, x)| c * x).sum()
    }

    /// `true` iff `x ≥ 0` and all constraints hold up to tolerance `tol`.
    pub fn is_feasible(&self, x: &[f64], tol: f64) -> bool {
        x.len() == self.num_vars
            && x.iter().all(|&v| v >= -tol && v.is_finite())
            && self.constraints.iter().all(|c| c.is_satisfied(x, tol))
    }

    /// Validates the problem description itself (finite coefficients,
    /// in-range variable indices).
    pub fn validate(&self) -> Result<(), LpError> {
        if self.objective.len() != self.num_vars {
            return Err(LpError::Malformed(format!(
                "objective has {} coefficients for {} variables",
                self.objective.len(),
                self.num_vars
            )));
        }
        for (idx, c) in self.objective.iter().enumerate() {
            if !c.is_finite() {
                return Err(LpError::Malformed(format!(
                    "objective coefficient {idx} is not finite"
                )));
            }
        }
        for (row, constraint) in self.constraints.iter().enumerate() {
            if !constraint.rhs.is_finite() {
                return Err(LpError::Malformed(format!(
                    "constraint {row} has non-finite right-hand side"
                )));
            }
            for (var, coeff) in &constraint.coeffs {
                if *var >= self.num_vars {
                    return Err(LpError::Malformed(format!(
                        "constraint {row} references unknown variable {var}"
                    )));
                }
                if !coeff.is_finite() {
                    return Err(LpError::Malformed(format!(
                        "constraint {row} has a non-finite coefficient for variable {var}"
                    )));
                }
            }
        }
        Ok(())
    }
}

/// Errors produced by the LP layer.
#[derive(Debug, Clone, PartialEq)]
pub enum LpError {
    /// The problem description itself is invalid.
    Malformed(String),
    /// The simplex iteration limit was exceeded (should not happen with the
    /// Bland anti-cycling fallback; indicates a numerical problem).
    IterationLimit {
        /// Number of pivots performed before giving up.
        iterations: usize,
    },
}

impl fmt::Display for LpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpError::Malformed(msg) => write!(f, "malformed linear program: {msg}"),
            LpError::IterationLimit { iterations } => {
                write!(f, "simplex did not converge within {iterations} pivots")
            }
        }
    }
}

impl std::error::Error for LpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constraint_constructors_and_evaluation() {
        let c = LpConstraint::le(vec![(0, 2.0), (2, 1.0)], 5.0);
        assert_eq!(c.op, ConstraintOp::Le);
        assert_eq!(c.lhs_value(&[1.0, 99.0, 2.0]), 4.0);
        assert!(c.is_satisfied(&[1.0, 0.0, 2.0], 1e-9));
        assert!(!c.is_satisfied(&[3.0, 0.0, 0.0], 1e-9));

        let g = LpConstraint::ge(vec![(1, 1.0)], 2.0);
        assert!(g.is_satisfied(&[0.0, 2.0], 1e-9));
        assert!(!g.is_satisfied(&[0.0, 1.0], 1e-9));

        let e = LpConstraint::eq(vec![(0, 1.0)], 1.0);
        assert!(e.is_satisfied(&[1.0], 1e-9));
        assert!(!e.is_satisfied(&[1.1], 1e-9));
        assert!(e.is_satisfied(&[1.05], 0.1));
    }

    #[test]
    fn problem_objective_and_feasibility() {
        let mut p = LpProblem::new(2, ObjectiveSense::Maximize);
        p.set_objective(0, 3.0).set_objective(1, 1.0);
        p.add_constraint(LpConstraint::le(vec![(0, 1.0), (1, 1.0)], 1.0));
        assert_eq!(p.num_constraints(), 1);
        assert_eq!(p.objective_value(&[0.5, 0.5]), 2.0);
        assert!(p.is_feasible(&[0.5, 0.5], 1e-9));
        assert!(!p.is_feasible(&[0.9, 0.9], 1e-9));
        assert!(!p.is_feasible(&[-0.1, 0.0], 1e-9));
        assert!(!p.is_feasible(&[0.5], 1e-9)); // wrong length
    }

    #[test]
    fn validation_catches_bad_indices_and_values() {
        let mut p = LpProblem::new(1, ObjectiveSense::Maximize);
        p.add_constraint(LpConstraint::le(vec![(3, 1.0)], 1.0));
        assert!(matches!(p.validate(), Err(LpError::Malformed(_))));

        let mut p = LpProblem::new(1, ObjectiveSense::Maximize);
        p.set_objective(0, f64::INFINITY);
        assert!(matches!(p.validate(), Err(LpError::Malformed(_))));

        let mut p = LpProblem::new(1, ObjectiveSense::Maximize);
        p.add_constraint(LpConstraint::le(vec![(0, f64::NAN)], 1.0));
        assert!(matches!(p.validate(), Err(LpError::Malformed(_))));

        let mut p = LpProblem::new(1, ObjectiveSense::Minimize);
        p.add_constraint(LpConstraint::ge(vec![(0, 1.0)], f64::NAN));
        assert!(matches!(p.validate(), Err(LpError::Malformed(_))));

        let mut ok = LpProblem::new(2, ObjectiveSense::Maximize);
        ok.add_constraint(LpConstraint::eq(vec![(0, 1.0), (1, -1.0)], 0.0));
        assert!(ok.validate().is_ok());
    }

    #[test]
    fn error_display() {
        let e = LpError::IterationLimit { iterations: 10 };
        assert!(e.to_string().contains("10"));
        let e = LpError::Malformed("broken".into());
        assert!(e.to_string().contains("broken"));
    }
}
