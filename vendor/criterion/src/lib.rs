//! Offline stand-in for the subset of
//! [Criterion.rs](https://crates.io/crates/criterion) that this workspace's
//! benchmarks use: [`Criterion::benchmark_group`], `sample_size`,
//! `bench_function` / `bench_with_input`, [`BenchmarkId`], [`Bencher::iter`],
//! and the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Instead of Criterion's statistical machinery it takes a straightforward
//! mean over `sample_size` timed iterations (after a short warm-up) and prints
//! one line per benchmark.  `cargo bench -- --test` runs every benchmark body
//! exactly once without timing, which is what the CI smoke pass uses.
//! Swapping this path dependency for the real crate requires no source
//! changes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Default number of timed iterations when a group does not set
/// [`BenchmarkGroup::sample_size`].
const DEFAULT_SAMPLE_SIZE: usize = 100;

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Debug)]
pub struct Criterion {
    test_mode: bool,
}

impl Criterion {
    /// Builds a driver from the process arguments.
    ///
    /// Recognises `--test` (run each benchmark once, untimed — the smoke mode
    /// used by `cargo bench -- --test`); other harness flags are ignored.
    pub fn from_args() -> Self {
        Self { test_mode: std::env::args().any(|a| a == "--test") }
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), sample_size: DEFAULT_SAMPLE_SIZE }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.into_benchmark_id().id;
        run_one(self.test_mode, DEFAULT_SAMPLE_SIZE, &label, f);
        self
    }

    /// Prints the closing line, mirroring Criterion's summary hook.
    pub fn final_summary(&self) {
        if self.test_mode {
            println!("criterion-shim: all benchmarks ran once in test mode");
        }
    }
}

/// A named collection of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs `f` as a benchmark named by `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id().id);
        run_one(self.criterion.test_mode, self.sample_size, &label, f);
        self
    }

    /// Runs `f` with `input` as a benchmark named by `id` within this group.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group.  Reporting happens per benchmark, so this is a no-op.
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group, mirroring `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// An id made of just a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self { id: parameter.to_string() }
    }
}

/// Conversion into a [`BenchmarkId`], so string literals work directly.
pub trait IntoBenchmarkId {
    /// Performs the conversion.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self.to_string() }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self }
    }
}

/// Timing harness handed to each benchmark body.
#[derive(Debug)]
pub struct Bencher {
    test_mode: bool,
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Measures `f` over this bencher's iteration budget.
    ///
    /// In test mode `f` runs exactly once and nothing is recorded.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.test_mode {
            black_box(f());
            return;
        }
        // Warm-up: a few untimed runs so one-off setup cost (page faults,
        // lazy allocation) does not dominate small sample sizes.
        for _ in 0..2.min(self.iterations) {
            black_box(f());
        }
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(test_mode: bool, sample_size: usize, label: &str, mut f: F) {
    let mut bencher =
        Bencher { test_mode, iterations: sample_size as u64, elapsed: Duration::ZERO };
    f(&mut bencher);
    if test_mode {
        println!("test {label} ... ok");
    } else if bencher.elapsed.is_zero() {
        println!("{label}: no measurement (body never called iter)");
    } else {
        let mean = bencher.elapsed.as_secs_f64() / bencher.iterations as f64;
        println!("{label}: mean {:.3} µs over {} iterations", mean * 1e6, bencher.iterations);
    }
}

/// Bundles benchmark functions into a single group entry point, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        /// Runs every benchmark function registered in this group.
        pub fn $name(criterion: &mut $crate::Criterion) {
            $( $target(criterion); )+
        }
    };
}

/// Generates the benchmark `main`, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::from_args();
            $( $group(&mut criterion); )+
            criterion.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_run_their_bodies() {
        let mut c = Criterion { test_mode: true };
        let mut calls = 0;
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        group.bench_function("direct", |b| b.iter(|| calls += 1));
        group.finish();
        assert_eq!(calls, 1, "test mode runs the body exactly once");
    }

    #[test]
    fn bench_with_input_passes_the_input() {
        let mut c = Criterion { test_mode: true };
        let mut seen = 0usize;
        let mut group = c.benchmark_group("g");
        group.bench_with_input(BenchmarkId::from_parameter(3), &41usize, |b, &x| {
            b.iter(|| seen = x + 1)
        });
        group.finish();
        assert_eq!(seen, 42);
    }

    #[test]
    fn timed_mode_records_elapsed() {
        let mut c = Criterion { test_mode: false };
        let mut group = c.benchmark_group("g");
        group.sample_size(5);
        group.bench_function("spin", |b| b.iter(|| black_box(1 + 1)));
        group.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 8).id, "f/8");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
    }
}
