//! Offline stand-in for the slice of the
//! [`parking_lot`](https://crates.io/crates/parking_lot) API this workspace
//! uses: a [`Mutex`] whose `lock()` returns the guard directly instead of a
//! `Result`.
//!
//! Backed by `std::sync::Mutex`; poisoning is dissolved by handing back the
//! inner guard, which matches parking_lot's "no poisoning" semantics.  Swapping
//! this path dependency for the real crate requires no source changes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::PoisonError;

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// A mutual-exclusion lock with parking_lot's panic-free `lock()` signature.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex guarding `value`.
    pub fn new(value: T) -> Self {
        Self { inner: std::sync::Mutex::new(value) }
    }

    /// Consumes the mutex and returns the guarded value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    ///
    /// Unlike `std`, a panic in another thread while holding the lock does not
    /// poison it: the guard is returned regardless.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking; only possible with exclusive ownership.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn survives_a_poisoning_panic() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }
}
