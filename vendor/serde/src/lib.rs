//! Offline stand-in for the [`serde`](https://crates.io/crates/serde) facade.
//!
//! The workspace annotates its data types with `#[derive(Serialize,
//! Deserialize)]` so they are ready for wire formats, but no code path
//! serialises anything yet and the build environment cannot reach crates.io.
//! This crate supplies the two names in both namespaces — marker traits in the
//! type namespace and no-op derive macros in the macro namespace, exactly like
//! serde with the `derive` feature — so `use serde::{Deserialize, Serialize}`
//! and the derive attributes compile unchanged.  Swapping this path dependency
//! for real serde requires no source changes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
///
/// The no-op derive does not implement it; nothing in the workspace requires
/// the bound yet.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize<'de>`.
///
/// The no-op derive does not implement it; nothing in the workspace requires
/// the bound yet.
pub trait Deserialize<'de>: Sized {}
