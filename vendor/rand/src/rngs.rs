//! Concrete generators, mirroring `rand::rngs`.

use crate::{RngCore, SeedableRng};

/// A deterministic pseudo-random generator standing in for `rand::rngs::StdRng`.
///
/// Implemented as xoshiro256++ (Blackman–Vigna), with the 256-bit state
/// expanded from the 64-bit seed by SplitMix64 — the initialisation the
/// xoshiro authors recommend.  Deterministic across platforms and runs, which
/// is what the experiment harnesses and property tests rely on.  Not suitable
/// for cryptography.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    state: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        Self { state: [next(), next(), next(), next()] }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s = [s0, s1, s2, s3];
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        self.state = s;
        result
    }
}
