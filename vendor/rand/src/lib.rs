//! Offline stand-in for the subset of the [`rand`](https://crates.io/crates/rand)
//! crate (0.8 API) that this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! a minimal, dependency-free implementation of the surface the code actually
//! calls: the [`Rng`] and [`SeedableRng`] traits, [`rngs::StdRng`], and the
//! [`seq::SliceRandom`] helpers.  `StdRng` is a deterministic xoshiro256++
//! generator seeded through SplitMix64 — not cryptographically secure, but
//! statistically solid and reproducible, which is all the instance generators
//! and tests need.  Swapping this path dependency for the real `rand` crate
//! requires no source changes.
//!
//! Intentional deviations from `rand` proper:
//!
//! * integer ranges are sampled by modulo reduction (the bias is negligible at
//!   the range sizes used here and irrelevant for test workloads);
//! * inclusive float ranges are sampled like half-open ones (the chance of
//!   hitting the exact upper endpoint is ~2⁻⁵³ either way).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod rngs;
pub mod seq;

/// The core source of randomness: a stream of `u64` values.
///
/// Mirrors `rand::RngCore`, reduced to the one method everything else can be
/// derived from.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling methods, available on every [`RngCore`].
///
/// Mirrors the `rand::Rng` extension trait.
pub trait Rng: RngCore {
    /// Returns a uniformly distributed value of type `T`.
    ///
    /// For floats this is uniform over `[0, 1)`; for integers uniform over the
    /// whole domain; for `bool` a fair coin.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Returns a value uniformly distributed over `range`.
    ///
    /// Supports half-open (`a..b`) and inclusive (`a..=b`) ranges over the
    /// common integer types and `f32`/`f64`.  Panics on an empty range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} not in [0, 1]");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator that can be constructed from a seed.
///
/// Mirrors the part of `rand::SeedableRng` the workspace uses.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, expanding it into full state.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types with a canonical "whole domain" uniform distribution, as produced by
/// [`Rng::gen`].
///
/// Plays the role of `rand::distributions::Standard`.
pub trait Standard: Sized {
    /// Draws one value from the standard distribution for this type.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits, uniform over [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that [`Rng::gen_range`] can sample from.
///
/// Plays the role of `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                // i128 difference handles signed ranges (e.g. -5..5); the
                // half-open width of any 64-bit type fits in u64, and the
                // wrapping add is exact two's-complement offset arithmetic.
                let width = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add((rng.next_u64() % width) as $t)
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let width = (end as i128 - start as i128) as u128 + 1;
                if width > u64::MAX as u128 {
                    // Full-domain range: every bit pattern is a valid sample.
                    return rng.next_u64() as $t;
                }
                start.wrapping_add((rng.next_u64() % width as u64) as $t)
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                self.start + <$t as Standard>::sample(rng) * (self.end - self.start)
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                start + <$t as Standard>::sample(rng) * (end - start)
            }
        }
    )*};
}

impl_sample_range_float!(f32, f64);

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_across_runs() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..10);
            assert!((3..10).contains(&x));
            let y = rng.gen_range(1usize..=5);
            assert!((1..=5).contains(&y));
            let f = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
            let g: f64 = rng.gen_range(0.5..=1.5);
            assert!((0.5..=1.5).contains(&g));
        }
    }

    #[test]
    fn gen_range_handles_signed_and_full_domain_ranges() {
        let mut rng = StdRng::seed_from_u64(19);
        for _ in 0..1000 {
            let x = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&x));
            let y = rng.gen_range(i64::MIN..=i64::MAX);
            let _ = y; // any value is valid; the point is no overflow panic
            let z = rng.gen_range(-3i8..=3);
            assert!((-3..=3).contains(&z));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn unit_interval_is_covered_roughly_uniformly() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut buckets = [0usize; 10];
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            buckets[(x * 10.0) as usize] += 1;
        }
        for b in buckets {
            assert!((700..1300).contains(&b), "bucket count {b} far from uniform");
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_multiple_returns_distinct_elements() {
        let mut rng = StdRng::seed_from_u64(17);
        let v: Vec<usize> = (0..20).collect();
        let picked: Vec<usize> = v.choose_multiple(&mut rng, 8).copied().collect();
        assert_eq!(picked.len(), 8);
        let mut dedup = picked.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 8);
    }
}
