//! Sequence-related helpers, mirroring `rand::seq`.

use crate::Rng;

/// Extension methods on slices for random selection and shuffling.
///
/// Mirrors the part of `rand::seq::SliceRandom` the workspace uses.
pub trait SliceRandom {
    /// The element type of the slice.
    type Item;

    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

    /// Returns a uniformly chosen element, or `None` if the slice is empty.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// Returns `amount` distinct elements chosen uniformly without
    /// replacement, in random order.  If the slice has fewer than `amount`
    /// elements, all of them are returned.
    fn choose_multiple<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        amount: usize,
    ) -> SliceChooseIter<'_, Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = crate::SampleRange::sample_single(0..=i, rng);
            self.swap(i, j);
        }
    }

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[crate::SampleRange::sample_single(0..self.len(), rng)])
        }
    }

    fn choose_multiple<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        amount: usize,
    ) -> SliceChooseIter<'_, T> {
        let amount = amount.min(self.len());
        // Partial Fisher–Yates over an index vector: the first `amount`
        // positions end up holding a uniform sample without replacement.
        let mut indices: Vec<usize> = (0..self.len()).collect();
        for i in 0..amount {
            let j = crate::SampleRange::sample_single(i..indices.len(), rng);
            indices.swap(i, j);
        }
        let picked: Vec<&T> = indices[..amount].iter().map(|&i| &self[i]).collect();
        SliceChooseIter { inner: picked.into_iter() }
    }
}

/// Iterator over the elements selected by [`SliceRandom::choose_multiple`].
#[derive(Debug)]
pub struct SliceChooseIter<'a, T> {
    inner: std::vec::IntoIter<&'a T>,
}

impl<'a, T> Iterator for SliceChooseIter<'a, T> {
    type Item = &'a T;

    fn next(&mut self) -> Option<&'a T> {
        self.inner.next()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

impl<T> ExactSizeIterator for SliceChooseIter<'_, T> {}
