//! Offline stand-in for the subset of
//! [`proptest`](https://crates.io/crates/proptest) that this workspace's
//! property tests use: the [`proptest!`] macro, range and tuple strategies,
//! [`any`], `prop_map`, [`prop_assert!`] / [`prop_assert_eq!`], and
//! [`ProptestConfig::with_cases`].
//!
//! Differences from real proptest, on purpose:
//!
//! * **No shrinking.**  On failure the harness panics with the test name, the
//!   case number, and a `Debug` dump of the generated inputs; cases are
//!   derived deterministically from the test name, so a failure reproduces by
//!   re-running the test.
//! * **Deterministic seeding.**  Case `i` of test `t` always sees the same
//!   input stream, keeping CI stable.
//! * **`PROPTEST_CASES`** (the same environment variable real proptest reads)
//!   *caps* the per-test case count, so CI can bound suite runtime without
//!   touching the source.
//!
//! Swapping this path dependency for the real crate requires no source
//! changes in the tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub mod prelude;

/// Per-test configuration, mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run for each test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Returns a configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// A failed property inside a [`proptest!`] body.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Builds a failure carrying `message`.
    pub fn fail(message: impl Into<String>) -> Self {
        Self { message: message.into() }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Result type produced by a [`proptest!`] body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// A generator of random test inputs.
///
/// Mirrors `proptest::strategy::Strategy`, reduced to plain sampling (no
/// shrink tree).
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value from the strategy.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps this strategy's output through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut StdRng) -> O {
        (self.f)(self.source.sample(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

/// Types with a canonical whole-domain strategy, usable via [`any`].
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value of this type.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_via_gen {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.gen()
            }
        }
    )*};
}

impl_arbitrary_via_gen!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// Strategy returned by [`any`].
#[derive(Debug)]
pub struct Any<T> {
    _marker: PhantomData<T>,
}

/// Returns the whole-domain strategy for `T`, mirroring `proptest::prelude::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any { _marker: PhantomData }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// Resolves how many cases to run: `configured`, capped by the
/// `PROPTEST_CASES` environment variable when it is set to a positive integer.
#[doc(hidden)]
pub fn resolve_cases(configured: u32) -> u32 {
    match std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse::<u32>().ok()) {
        Some(cap) if cap > 0 => configured.min(cap),
        _ => configured,
    }
}

/// Deterministic per-case RNG: FNV-1a of the test name, mixed with the case
/// index so consecutive cases are decorrelated.
#[doc(hidden)]
pub fn case_rng(test_name: &str, case: u32) -> StdRng {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in test_name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(hash ^ u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

/// Asserts a condition inside a [`proptest!`] body, failing the current case
/// (with an optional formatted message) instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let left = &$left;
        let right = &$right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let left = &$left;
        let right = &$right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

/// Declares property tests, mirroring `proptest::proptest!`.
///
/// Supports the forms this workspace uses: an optional leading
/// `#![proptest_config(...)]`, then test functions whose arguments are
/// `pattern in strategy` pairs.  Each generated input type must implement
/// `Debug` (inputs are reported when a case fails).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let cases = $crate::resolve_cases(config.cases);
            for case in 0..cases {
                let rng = &mut $crate::case_rng(stringify!($name), case);
                let mut inputs = String::new();
                $(
                    let $arg = {
                        let value = $crate::Strategy::sample(&$strategy, rng);
                        inputs.push_str(&format!(
                            "{} = {:?}; ",
                            stringify!($arg),
                            &value
                        ));
                        value
                    };
                )+
                let outcome: $crate::TestCaseResult = (move || {
                    $body
                    ::core::result::Result::Ok(())
                })();
                if let ::core::result::Result::Err(err) = outcome {
                    panic!(
                        "proptest {} failed at case {}/{}\n inputs: {}\n  cause: {}",
                        stringify!($name),
                        case,
                        cases,
                        inputs.trim_end(),
                        err
                    );
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use super::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..9, y in 0.0f64..1.0) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((0.0..1.0).contains(&y));
        }

        #[test]
        fn tuples_and_prop_map_compose(
            (a, b) in (1usize..5, any::<bool>()).prop_map(|(a, b)| (a * 2, b)),
        ) {
            prop_assert!(a % 2 == 0);
            prop_assert!((2..10).contains(&a));
            let _ = b;
        }
    }

    #[test]
    fn cases_env_var_caps_not_raises() {
        // Can't set the env var here without racing other tests; exercise the
        // resolver's pure paths instead.
        assert_eq!(resolve_cases(10).min(10), resolve_cases(10));
    }

    #[test]
    fn case_rng_is_deterministic_and_name_sensitive() {
        use rand::RngCore;
        assert_eq!(case_rng("t", 0).next_u64(), case_rng("t", 0).next_u64());
        assert_ne!(case_rng("t", 0).next_u64(), case_rng("u", 0).next_u64());
        assert_ne!(case_rng("t", 0).next_u64(), case_rng("t", 1).next_u64());
    }
}
