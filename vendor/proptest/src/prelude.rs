//! One-import surface, mirroring `proptest::prelude`.

pub use crate::{
    any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Any, Arbitrary, ProptestConfig,
    Strategy, TestCaseError, TestCaseResult,
};
