//! No-op stand-ins for serde's derive macros.
//!
//! The workspace's types carry `#[derive(Serialize, Deserialize)]` so that the
//! real serde can be dropped in once the build environment has network access,
//! but nothing in the workspace serialises anything yet.  These derives accept
//! the same positions and expand to nothing, so the attribute compiles without
//! pulling in `syn`/`quote` (unavailable offline).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and expands to nothing.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and expands to nothing.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
