//! The two-tier sensor-network application of Section 2: maximise the
//! minimum data rate over all monitored areas (equivalently, the network
//! lifetime under fair per-area reporting), and compare the local algorithms
//! against the centralised optimum and the uniform baseline.
//!
//! Run with `cargo run --release --example sensor_lifetime`.

use maxmin_local_lp::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(2008);
    let config = SensorNetworkConfig {
        num_sensors: 80,
        num_relays: 25,
        num_areas: 25,
        radio_range: 0.22,
        sensing_range: 0.28,
        ..Default::default()
    };
    let network = sensor_network_instance(&config, &mut rng);
    let instance = &network.instance;

    println!("two-tier sensor network");
    println!("  sensors (with links): {}", network.sensor_positions.len());
    println!("  relays  (with links): {}", network.relay_positions.len());
    println!("  monitored areas:      {}", network.area_positions.len());
    println!("  wireless links:       {}", network.num_links());
    let degrees = instance.degree_bounds();
    println!(
        "  degree bounds: Δ_I^V = {}, Δ_K^V = {}",
        degrees.max_resource_support, degrees.max_party_support
    );

    // Candidate allocations.
    let safe = safe_algorithm(instance);
    let averaged_r1 = local_averaging(instance, &LocalAveragingOptions::new(1)).unwrap();
    let averaged_r2 = local_averaging(instance, &LocalAveragingOptions::new(2)).unwrap();
    let uniform = uniform_baseline(instance);

    let report = compare_algorithms(
        instance,
        &[
            ("uniform (non-local)", &uniform),
            ("safe (r = 1)", &safe),
            ("local averaging (R = 1)", &averaged_r1.solution),
            ("local averaging (R = 2)", &averaged_r2.solution),
        ],
        1e-7,
    )
    .unwrap();

    println!("\noptimal minimum area rate ω* = {:.5}", report.optimum);
    println!("{:<26} {:>12} {:>10} {:>10}", "algorithm", "min rate ω", "ratio", "feasible");
    for entry in &report.entries {
        println!(
            "{:<26} {:>12.5} {:>10.3} {:>10}",
            entry.name,
            entry.objective,
            entry.ratio,
            if entry.feasible { "yes" } else { "NO" }
        );
    }

    // Where does the optimum hurt?  Report the bottleneck area of the safe
    // solution — the area whose data rate limits the whole network.
    let eval = instance.evaluate(&safe).unwrap();
    if let Some(bottleneck) = eval.bottleneck_party() {
        let position = network.area_positions[bottleneck];
        println!(
            "\nbottleneck area under the safe allocation: area {} at ({:.2}, {:.2}), rate {:.5}",
            bottleneck, position.0, position.1, eval.party_benefits[bottleneck]
        );
    }

    // Run the safe algorithm through the distributed simulator to show the
    // real communication cost of the horizon-1 algorithm.
    let run = run_local_rule(
        instance,
        SAFE_HORIZON,
        &Simulator::new(),
        &ParallelConfig::default(),
        safe_activity_from_view,
    )
    .unwrap();
    println!(
        "\ndistributed execution of the safe algorithm: {} rounds, {} messages ({:.1} per link agent)",
        run.rounds,
        run.messages,
        run.messages_per_agent()
    );
    assert_eq!(run.solution, safe);
}
