//! Theorem 3 in action: on bounded-growth networks (here, a 2-D torus) the
//! local averaging algorithm is a *local approximation scheme* — increasing
//! the radius `R` drives the approximation ratio towards 1, with the measured
//! growth bound `γ(R−1)·γ(R)` tracking it from above.
//!
//! Run with `cargo run --release --example grid_scheme`.

use maxmin_local_lp::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let side = 12;
    let config = GridConfig { side_lengths: vec![side, side], torus: true, random_weights: true };
    let mut rng = StdRng::seed_from_u64(5);
    let instance = grid_instance(&config, &mut rng);
    let (hypergraph, _) = communication_hypergraph(&instance);

    println!("{side}×{side} torus, {} agents", instance.num_agents());

    // Measured relative growth of the communication hypergraph.
    let max_radius = 4;
    let profile = growth_profile(&hypergraph, max_radius);
    println!("\nrelative growth of balls:");
    for (r, gamma) in profile.gamma.iter().enumerate() {
        println!("  γ({r}) = {gamma:.4}");
    }

    let optimum = solve_maxmin(&instance).unwrap();
    println!("\noptimum ω* = {:.5}", optimum.objective);

    println!(
        "\n{:>3} {:>14} {:>12} {:>14} {:>16}",
        "R", "objective ω", "ratio", "a-post. bound", "γ(R−1)·γ(R)"
    );
    let safe = safe_algorithm(&instance);
    let safe_objective = instance.objective(&safe).unwrap();
    println!(
        "{:>3} {:>14.5} {:>12.4} {:>14.4} {:>16}",
        "-",
        safe_objective,
        optimum.objective / safe_objective,
        instance.degree_bounds().safe_algorithm_ratio(),
        "(safe algorithm)"
    );
    for radius in 1..=max_radius {
        let result = local_averaging(&instance, &LocalAveragingOptions::new(radius)).unwrap();
        let objective = instance.objective(&result.solution).unwrap();
        let gamma_bound = profile.gamma[radius - 1] * profile.gamma[radius];
        println!(
            "{:>3} {:>14.5} {:>12.4} {:>14.4} {:>16.4}",
            radius,
            objective,
            optimum.objective / objective,
            result.guaranteed_ratio,
            gamma_bound
        );
        assert!(instance.is_feasible(&result.solution, 1e-7));
    }

    println!("\nAs R grows, γ(R−1)·γ(R) → 1 on the torus, so the measured ratio approaches 1:");
    println!("the local averaging algorithm is a local approximation scheme on this family.");
}
