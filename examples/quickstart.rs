//! Quickstart: build a small max-min LP by hand, solve it exactly, and run
//! both local algorithms of the paper on it.
//!
//! Run with `cargo run --example quickstart`.

use maxmin_local_lp::prelude::*;

fn main() {
    // A toy "fair sharing" instance: three agents, two of which compete for a
    // shared channel; three customers (parties), one of which is served by
    // two agents.
    //
    //   resources: i0 = {v0, v1} (shared channel), i1 = {v2} (private)
    //   parties:   k0 ← v0,   k1 ← v1,   k2 ← {v1, v2}
    let mut builder = InstanceBuilder::new();
    let v = builder.add_agents(3);
    let i0 = builder.add_resource();
    let i1 = builder.add_resource();
    builder.set_consumption(i0, v[0], 1.0);
    builder.set_consumption(i0, v[1], 1.0);
    builder.set_consumption(i1, v[2], 2.0);
    let k0 = builder.add_party();
    let k1 = builder.add_party();
    let k2 = builder.add_party();
    builder.set_benefit(k0, v[0], 1.0);
    builder.set_benefit(k1, v[1], 1.0);
    builder.set_benefit(k2, v[1], 0.5);
    builder.set_benefit(k2, v[2], 1.0);
    let instance = builder.build().expect("a valid max-min LP");

    println!(
        "instance: {} agents, {} resources, {} parties",
        instance.num_agents(),
        instance.num_resources(),
        instance.num_parties()
    );
    let degrees = instance.degree_bounds();
    println!(
        "degree bounds: Δ_I^V = {}, Δ_K^V = {}, Δ_V^I = {}, Δ_V^K = {}",
        degrees.max_resource_support,
        degrees.max_party_support,
        degrees.max_agent_resources,
        degrees.max_agent_parties
    );

    // 1. The exact optimum, from the centralised simplex baseline.
    let optimum = solve_maxmin(&instance).expect("the LP baseline always solves valid instances");
    println!("\noptimum ω* = {:.4}", optimum.objective);
    println!("optimal activities: {:?}", optimum.solution.activities());

    // 2. The safe algorithm: each agent claims an equal share of each of its
    //    resources and keeps the most conservative one (local horizon 1).
    let safe = safe_algorithm(&instance);
    let safe_objective = instance.objective(&safe).unwrap();
    println!("\nsafe algorithm:");
    println!("  activities  = {:?}", safe.activities());
    println!("  objective ω = {:.4}", safe_objective);
    println!(
        "  ratio       = {:.4}  (guarantee: Δ_I^V = {})",
        optimum.objective / safe_objective,
        degrees.safe_algorithm_ratio()
    );

    // 3. The local averaging algorithm of Theorem 3 with radius R = 1.
    let averaged =
        local_averaging(&instance, &LocalAveragingOptions::new(1)).expect("local LPs solve");
    let averaged_objective = instance.objective(&averaged.solution).unwrap();
    println!("\nlocal averaging (R = 1):");
    println!("  activities  = {:?}", averaged.solution.activities());
    println!("  objective ω = {:.4}", averaged_objective);
    println!(
        "  ratio       = {:.4}  (a-posteriori guarantee: {:.4})",
        optimum.objective / averaged_objective,
        averaged.guaranteed_ratio
    );

    // 4. Everything is feasible.
    assert!(instance.is_feasible(&safe, 1e-9));
    assert!(instance.is_feasible(&averaged.solution, 1e-7));
    println!("\nboth local solutions are feasible ✓");
}
