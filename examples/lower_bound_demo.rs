//! The inapproximability construction of Theorem 1, executed end to end:
//! build the adversarial instance `S`, run a local algorithm on it, derive
//! the sub-instance `S'`, and watch the algorithm lose (roughly) the factor
//! `Δ_I^V / 2` the theorem predicts.
//!
//! Run with `cargo run --release --example lower_bound_demo`.

use maxmin_local_lp::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // Corollary 2 configuration: Δ_I^V = 3, Δ_K^V = 2 (so d = 2, D = 1),
    // defeating local horizon r = 1 with hypertree radius R = 2.
    let config = LowerBoundConfig {
        max_resource_support: 3,
        max_party_support: 2,
        local_horizon: 1,
        tree_radius: 2,
    };
    let mut rng = StdRng::seed_from_u64(42);
    let lb = LowerBoundInstance::build(config, &mut rng);

    println!("lower-bound construction S (Theorem 1 / Corollary 2)");
    println!("  Δ_I^V = {}, Δ_K^V = {}", config.max_resource_support, config.max_party_support);
    println!(
        "  template Q: {} vertices, degree {}, girth ≥ {}",
        lb.template.num_nodes(),
        config.template_degree(),
        config.required_girth()
    );
    println!(
        "  hypertrees: {} copies × {} nodes  →  {} agents, {} resources, {} parties",
        lb.num_trees(),
        lb.tree_size(),
        lb.instance.num_agents(),
        lb.instance.num_resources(),
        lb.instance.num_parties()
    );
    println!(
        "  asymptotic bound: no local algorithm beats {:.3}; this finite R gives {:.3}",
        config.theorem1_bound(),
        config.finite_bound()
    );

    // Run the safe algorithm (the best known local algorithm in this regime)
    // on S.  Being deterministic and local, its choices on the T_p agents are
    // the same as they would be on S'.
    let x_on_s = safe_algorithm(&lb.instance);
    println!("\nsafe algorithm on S: objective {:.4}", lb.instance.objective(&x_on_s).unwrap());

    // Derive the adversarial sub-instance S' from those choices.
    let sub = lb.sub_instance(&x_on_s);
    println!(
        "sub-instance S': tree p = {}, {} agents, {} resources, {} parties",
        sub.chosen_tree,
        sub.instance.num_agents(),
        sub.instance.num_resources(),
        sub.instance.num_parties()
    );
    let (h_prime, _) = communication_hypergraph(&sub.instance);
    println!("  S' is tree-like (Berge-acyclic): {}", h_prime.is_berge_acyclic());

    // Section 4.5: S' admits a feasible solution with ω = 1.
    let x_hat = alternating_solution(&sub);
    let opt_value = sub.instance.objective(&x_hat).unwrap();
    println!(
        "  alternating solution of S': feasible = {}, ω = {:.4}",
        sub.instance.is_feasible(&x_hat, 1e-9),
        opt_value
    );

    // The algorithm's own choices, re-interpreted on S' (identical for the
    // T_p agents because their radius-r views coincide).
    let projected = sub.project(&x_on_s);
    let achieved = sub.instance.objective(&projected).unwrap();
    println!("\nsafe algorithm evaluated on S':");
    println!("  achieved ω = {:.4}", achieved);
    println!("  opt(S')   ≥ {:.4}", opt_value);
    println!("  ⇒ approximation ratio on S' ≥ {:.3}", opt_value / achieved);
    println!(
        "  Theorem 1 says every local algorithm suffers ≥ {:.3} somewhere (Δ_I^V/2 = {:.1})",
        config.finite_bound(),
        config.max_resource_support as f64 / 2.0
    );
}
